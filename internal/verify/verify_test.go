package verify

import (
	"strings"
	"testing"
	"time"

	"rana/internal/energy"
	"rana/internal/exec"
	"rana/internal/fixed"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sched"
	"rana/internal/verify/gen"
)

// ranaOptions returns the full RANA design point's scheduling options at
// the tolerable interval.
func ranaOptions() sched.Options {
	return sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: 734 * time.Microsecond,
		Controller:      memctrl.RefreshOptimized{},
	}
}

// TestOracleZooAgreement: the three models agree on every AlexNet layer
// under both RANA patterns at the natural tiling — the smallest slice of
// the full sweep cmd/rana-verify runs.
func TestOracleZooAgreement(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	tol := DefaultTolerances()
	opts := ranaOptions()
	for _, l := range models.AlexNet().Layers {
		for _, k := range []pattern.Kind{pattern.OD, pattern.WD} {
			ti := sched.NaturalTiling(l, cfg)
			r := CompareLayer(l, k, ti, cfg, tol)
			if !r.OK() {
				t.Errorf("%s", r)
			}
			a := pattern.MustAnalyze(l, k, ti, cfg)
			rr, err := CompareRefresh(a, cfg, opts, tol)
			if err != nil {
				t.Fatal(err)
			}
			if !rr.OK() {
				t.Errorf("refresh: %s", rr)
			}
		}
	}
}

// TestOracleRandomAgreement: randomized cases from the shared generator
// also agree, across both mappings and all patterns.
func TestOracleRandomAgreement(t *testing.T) {
	g := gen.New(7)
	tol := DefaultTolerances()
	for i := 0; i < 150; i++ {
		c := g.Case()
		r := CompareLayer(c.Layer, c.Pattern, c.Tiling, c.Config, tol)
		if !r.OK() {
			t.Fatalf("case %d: %s", i, r)
		}
		if c.Options.Controller != nil {
			a := pattern.MustAnalyze(c.Layer, c.Pattern, c.Tiling, c.Config)
			rr, err := CompareRefresh(a, c.Config, c.Options, tol)
			if err != nil {
				t.Fatal(err)
			}
			if !rr.OK() {
				t.Fatalf("case %d refresh: %s", i, rr)
			}
		}
	}
}

// TestOracleFunctional: the word-accurate simulator agrees with the tick
// and analytical models on small layers, with refresh live at the
// conventional interval.
func TestOracleFunctional(t *testing.T) {
	g := gen.New(11)
	cfg := gen.New(12).Config()
	tol := DefaultTolerances()
	for i := 0; i < 5; i++ {
		l := g.TinyLayer()
		r, err := CompareFunctional(l, cfg, 45*time.Microsecond, 100+uint64(i), tol)
		if err != nil {
			t.Fatalf("layer %+v on %s: %v", l, cfg.Name, err)
		}
		if !r.OK() {
			t.Errorf("layer %d: %s", i, r)
		}
	}
}

// TestOracleCatchesBrokenRefreshFlags is the seeded regression the
// acceptance criteria demand: an intentionally broken refresh-flag
// computation (refresh needs inverted, as a drifted NeedsFor would
// produce) must be caught both by the plan invariants and by the
// refresh-word re-derivation.
func TestOracleCatchesBrokenRefreshFlags(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	opts := ranaOptions()
	plan, err := sched.Schedule(models.AlexNet(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckPlan(plan, DefaultTolerances()); len(vs) != 0 {
		t.Fatalf("clean plan reported violations: %v", vs)
	}

	// Find a layer whose needs are non-trivial and break them the way a
	// lifetime-comparison bug would: flip every flag.
	broke := false
	for i := range plan.Layers {
		lp := &plan.Layers[i]
		lp.Needs = memctrl.Needs{
			Inputs:  !lp.Needs.Inputs,
			Outputs: !lp.Needs.Outputs,
			Weights: !lp.Needs.Weights,
		}
		broke = true
		break
	}
	if !broke {
		t.Fatal("no layer to break")
	}
	vs := CheckPlan(plan, DefaultTolerances())
	if len(vs) == 0 {
		t.Fatal("oracle missed the broken refresh flags")
	}
	found := false
	for _, v := range vs {
		if strings.HasPrefix(v.Invariant, "refresh-flag/") {
			found = true
		}
	}
	if !found {
		t.Errorf("no refresh-flag violation in %v", vs)
	}
}

// TestCheckPlanCatchesCorruptedTotals: tampering with the aggregate
// counters is detected.
func TestCheckPlanCatchesCorruptedTotals(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	plan, err := sched.Schedule(models.AlexNet(), cfg, ranaOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan.Totals.MACs++
	vs := CheckPlan(plan, DefaultTolerances())
	found := false
	for _, v := range vs {
		if v.Invariant == "totals-conserved" {
			found = true
		}
	}
	if !found {
		t.Errorf("corrupted totals not caught: %v", vs)
	}
}

// TestPlanCheckerPlugsIntoSchedule: the Options.Check seam runs the
// invariants at schedule time and propagates failures.
func TestPlanCheckerPlugsIntoSchedule(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	opts := ranaOptions()
	opts.Check = PlanChecker(DefaultTolerances())
	if _, err := sched.Schedule(models.AlexNet(), cfg, opts); err != nil {
		t.Fatalf("checked schedule failed: %v", err)
	}

	// A hook that always fails must fail the schedule.
	opts.Check = func(p *sched.Plan) error { return violationsErr([]Violation{{Invariant: "forced", Detail: "x"}}) }
	if _, err := sched.Schedule(models.AlexNet(), cfg, opts); err == nil {
		t.Fatal("failing check did not fail the schedule")
	}
}

// chainNet is a tiny two-layer network whose shapes chain, for engine
// runs.
func chainNet() models.Network {
	return models.Network{Name: "chain", Layers: []models.ConvLayer{
		{Name: "l0", N: 2, H: 6, L: 6, M: 3, K: 3, S: 1, P: 1},
		{Name: "l1", N: 3, H: 6, L: 6, M: 2, K: 3, S: 1, P: 1},
	}}
}

// smallConfig is an eDRAM accelerator small enough for word-accurate
// execution.
func smallConfig() hw.Config {
	return hw.Config{
		Name: "small", ArrayM: 4, ArrayN: 4, FrequencyHz: 200e6,
		LocalInput: 8192, LocalOutput: 2048, LocalWeight: 8192,
		BufferWords: 4 * 1024, BufferTech: energy.EDRAM, BankWords: 1024,
	}
}

// TestRunObserverOnEngine: the runtime invariants hold across a real
// chained engine run, and CheckReport passes the resulting report.
func TestRunObserverOnEngine(t *testing.T) {
	cfg := smallConfig()
	net := chainNet()
	opts := ranaOptions()
	plan, err := sched.Schedule(net, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	e := exec.New(cfg)
	e.Observer = NewRunObserver()
	g := gen.New(21)
	input := g.Words(int(net.Layers[0].InputWords()))
	weights := [][]fixed.Word{
		g.Words(int(net.Layers[0].WeightWords())),
		g.Words(int(net.Layers[1].WeightWords())),
	}
	report, err := e.Run(plan, input, weights)
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckReport(report, cfg.BufferTech, DefaultTolerances()); len(vs) != 0 {
		t.Errorf("report violations: %v", vs)
	}
}

// TestRunObserverRejectsBrokenClock: a non-monotonic clock sequence is
// rejected.
func TestRunObserverRejectsBrokenClock(t *testing.T) {
	o := NewRunObserver()
	l := models.ConvLayer{Name: "x", N: 1, H: 4, L: 4, M: 1, K: 1, S: 1}
	if err := o.LayerExecuted(0, l, 0, time.Millisecond, 5); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
	if err := o.LayerExecuted(1, l, time.Millisecond, time.Microsecond, 5); err == nil {
		t.Error("backwards clock accepted")
	}
	o = NewRunObserver()
	if err := o.LayerExecuted(0, l, 0, time.Millisecond, 5); err != nil {
		t.Fatal(err)
	}
	if err := o.LayerExecuted(1, l, 2*time.Millisecond, 3*time.Millisecond, 5); err == nil {
		t.Error("clock gap accepted")
	}
	o = NewRunObserver()
	if err := o.LayerExecuted(0, l, 0, time.Millisecond, 5); err != nil {
		t.Fatal(err)
	}
	if err := o.LayerExecuted(1, l, time.Millisecond, 2*time.Millisecond, 3); err == nil {
		t.Error("decreasing refresh counter accepted")
	}
}

// TestMinimizeShrinks: the minimizer reduces a large failing case to the
// smallest one still failing the predicate.
func TestMinimizeShrinks(t *testing.T) {
	g := gen.New(5)
	c := g.Case()
	c.Layer = models.ConvLayer{Name: "big", N: 64, H: 32, L: 32, M: 64, K: 5, S: 2, P: 2, Groups: 2}
	c.Tiling = pattern.Tiling{Tm: 16, Tn: 16, Tr: 2, Tc: 16}
	// Predicate: fails whenever the layer has more than 4 input channels.
	fails := func(c gen.Case) bool { return c.Layer.N > 4 }
	m := Minimize(c, fails)
	if !fails(m) {
		t.Fatal("minimized case no longer fails")
	}
	if m.Layer.N > 8 {
		t.Errorf("N=%d not shrunk", m.Layer.N)
	}
	if m.Layer.Validate() != nil || m.Tiling.Validate() != nil {
		t.Errorf("minimized case invalid: %+v %+v", m.Layer, m.Tiling)
	}
	// A passing case is returned unchanged.
	ok := g.Case()
	ok.Layer.N = 1
	if got := Minimize(ok, fails); got.Layer != ok.Layer {
		t.Error("passing case mutated")
	}
}

// TestDivergenceRendering: reports render the offending check for humans.
func TestDivergenceRendering(t *testing.T) {
	r := &Report{Layer: models.ConvLayer{Name: "l"}, Pattern: pattern.OD}
	r.diverge("cycles", "analytical", "walker", 10, 11)
	if r.OK() {
		t.Fatal("diverged report claims OK")
	}
	s := r.String()
	for _, want := range []string{"cycles", "analytical", "walker", "10", "11"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q: %s", want, s)
		}
	}
}
