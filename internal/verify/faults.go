package verify

// The fault-injection differential oracle. The admission pipeline claims
// that every operating point the scheduler admits keeps accuracy within
// the declared error budget, and that the masks the fault engine derives
// from a backend's failure model are reproducible. Neither claim is
// argued here — both are *checked*, end to end:
//
//   - admission soundness, twice over: the calibrated per-layer
//     resilience curves must accept every admitted point's raw bit-error
//     rate at every layer position, and the empirical oracle (the demo
//     CNN, pretrained once, evaluated under rate-matched injection on
//     the real nn forward pass) must stay within its accuracy budget at
//     that rate;
//
//   - rejection soundness (the negative oracle): every point whose rate
//     exceeds the uniform budget must fail to schedule, and — with the
//     uniform budget deliberately loosened to 1 — the per-layer budgets
//     alone must still reject it, naming the offending layer;
//
//   - reproducibility, literally: the per-layer masks derived from
//     (backend, point, plan) under one seed must regenerate
//     byte-identically, and the empirical accuracy probe must return
//     bit-identical floats on a same-seed rerun;
//
//   - plan stability: attaching the per-layer budgets derived at the
//     default constraint must leave default-path plan bytes untouched.
//
// CompareFaultFunctional closes the storage loop: a mask overlaid on a
// backend's own functional buffer (fault.Wrap) must corrupt exactly the
// words the mask names — the simulator's word-error count equals the
// mask's distinct-word count, no more, no less.

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"rana/internal/fault"
	"rana/internal/fixed"
	"rana/internal/hw"
	"rana/internal/mem"
	"rana/internal/models"
	"rana/internal/retention"
	"rana/internal/sched"
	"rana/internal/sim"
	"rana/internal/training"
	"rana/internal/verify/gen"
)

// maskWindow caps the per-layer mask extent: flip statistics are
// position-independent, so a window over the region prefix checks the
// derivation without drawing millions of bits for the large layers.
const maskWindow = 4096

// DefaultOracleConstraint is the relative-accuracy floor the empirical
// oracle enforces. It is looser than the calibrated Stage 1 constraint
// because the demo CNN is evaluated on a small synthetic test set whose
// single-trial accuracy is quantized to 1/len(test) steps.
const DefaultOracleConstraint = 0.95

// FaultOracle is the empirical half of the fault differential: the
// retention-aware training method's pretrained demo CNN, probed under
// rate-matched bit-level injection. Admitted bit-error rates sit far
// below what even the unadapted model tolerates, so pretraining once is
// enough — no per-rate retraining, which keeps the oracle CI-speed.
type FaultOracle struct {
	// Constraint is the minimum relative accuracy an admitted rate must
	// keep (DefaultOracleConstraint unless overridden).
	Constraint float64
	// Trials averages the accuracy probe over independent error
	// patterns.
	Trials int

	method *training.Method
	cache  map[float64]oracleProbe
}

// oracleProbe is one cached accuracy measurement.
type oracleProbe struct {
	rel float64
	// deterministic reports whether a same-seed rerun reproduced the
	// measurement bit for bit.
	deterministic bool
}

// NewFaultOracle pretrains the demo model once (cfg and nSamples as in
// training.NewMethod) and returns the bound oracle.
func NewFaultOracle(cfg training.Config, nSamples int) *FaultOracle {
	return &FaultOracle{
		Constraint: DefaultOracleConstraint,
		Trials:     3,
		method:     training.NewMethod(cfg, nSamples),
		cache:      map[float64]oracleProbe{},
	}
}

// Baseline is the clean fixed-point accuracy the probes are relative to.
func (o *FaultOracle) Baseline() float64 { return o.method.Baseline() }

// Relative measures the pretrained model's relative accuracy under a
// uniform bit-error rate, running the probe twice to certify that a
// same-seed rerun is bit-identical. Results are cached per rate.
func (o *FaultOracle) Relative(ber float64) (rel float64, deterministic bool) {
	if p, ok := o.cache[ber]; ok {
		return p.rel, p.deterministic
	}
	trials := o.Trials
	if trials < 1 {
		trials = 1
	}
	a := o.method.EvaluatePretrained(ber, trials)
	b := o.method.EvaluatePretrained(ber, trials)
	p := oracleProbe{deterministic: math.Float64bits(a) == math.Float64bits(b)}
	if base := o.method.Baseline(); base > 0 {
		p.rel = a / base
	}
	o.cache[ber] = p
	return p.rel, p.deterministic
}

// FaultReport collects one network's fault-differential divergences.
type FaultReport struct {
	Network string
	// Swept lists the operating points exercised, in sweep order;
	// negative-oracle rejections carry a "!" suffix.
	Swept       []string
	Divergences []Divergence
}

// OK reports whether every check passed.
func (r *FaultReport) OK() bool { return len(r.Divergences) == 0 }

// String summarizes the report, one divergence per line.
func (r *FaultReport) String() string {
	if r.OK() {
		return fmt.Sprintf("%s: fault admission holds (%s)", r.Network, strings.Join(r.Swept, ", "))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d fault divergences\n", r.Network, len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return strings.TrimRight(b.String(), "\n")
}

// diverge appends a divergence between two rendered values.
func (r *FaultReport) diverge(check, wantModel, gotModel string, want, got any) {
	r.Divergences = append(r.Divergences, Divergence{
		Check:  check,
		Models: [2]string{wantModel, gotModel},
		Want:   fmt.Sprint(want),
		Got:    fmt.Sprint(got),
	})
}

// CompareFaults runs the fault-injection differential for one network:
// derives the per-layer budgets at the constraint (<= 0 selects the
// paper-reproducing 0.995), then checks plan-byte stability, admission
// of every in-budget operating point (calibrated curves per layer, the
// empirical oracle per point, mask reproducibility per layer) and
// rejection of every over-budget point, including the per-layer-only
// variant. opts.Backend, opts.OperatingPoint and opts.LayerBudgets are
// overridden per run; everything else is compared as given. A nil
// oracle skips the empirical probes (the structural checks still run).
func CompareFaults(net models.Network, cfg hw.Config, opts sched.Options, oracle *FaultOracle,
	constraint float64, seed uint64) (*FaultReport, error) {
	if constraint <= 0 {
		constraint = 0.995
	}
	r := &FaultReport{Network: net.Name}

	names := make([]string, len(net.Layers))
	for i, l := range net.Layers {
		names[i] = l.Name
	}
	budgets, err := training.LayerTolerableRates(net.Name, names, constraint, training.PaperRates)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	maxBudget := 0.0
	for _, b := range budgets {
		if b > maxBudget {
			maxBudget = b
		}
	}

	withFaults := func(backend, point string) sched.Options {
		o := opts
		o.Backend = backend
		o.OperatingPoint = point
		o.LayerBudgets = budgets
		return o
	}

	// Plan stability: per-layer budgets derived at the default
	// constraint never tighten below the uniform budget on the default
	// path, so attaching them must not move a single plan byte.
	plain, plainErr := sched.Schedule(net, cfg, opts)
	budgeted := opts
	budgeted.LayerBudgets = budgets
	withB, withBErr := sched.Schedule(net, cfg, budgeted)
	if (plainErr == nil) != (withBErr == nil) {
		r.diverge("fault/budget-error", "plain", "budgeted", errString(plainErr), errString(withBErr))
		return r, nil
	}
	if plainErr != nil {
		if plainErr.Error() != withBErr.Error() {
			r.diverge("fault/budget-error-text", "plain", "budgeted", plainErr, withBErr)
		}
		return r, nil
	}
	plainJSON, err := json.Marshal(sched.Encode(plain))
	if err != nil {
		return nil, fmt.Errorf("verify: encoding plain plan: %w", err)
	}
	withBJSON, err := json.Marshal(sched.Encode(withB))
	if err != nil {
		return nil, fmt.Errorf("verify: encoding budgeted plan: %w", err)
	}
	if string(plainJSON) != string(withBJSON) {
		r.diverge("fault/budget-bytes", "plain", "budgeted",
			fmt.Sprintf("%.120s", plainJSON), fmt.Sprintf("%.120s", withBJSON))
	}

	// The exposure baseline: how long the schedule lets data rest in the
	// cells between refreshes at nominal retention scale.
	interval := opts.RefreshInterval
	if interval <= 0 {
		interval = retention.TolerableRetentionTime
	}
	budget := opts.ErrorBudget
	if budget <= 0 {
		budget = retention.TolerableFailureRate
	}

	for _, bk := range mem.Buffers() {
		for _, p := range bk.Points() {
			spec := bk.Name() + "@" + p.Name
			if p.BitErrorRate > budget {
				// Negative oracle: the uniform budget must reject the
				// point outright...
				r.Swept = append(r.Swept, spec+"!")
				o := withFaults(bk.Name(), p.Name)
				if _, err := sched.Schedule(net, cfg, o); err == nil {
					r.diverge("fault/reject/"+spec, "rejected", spec, "schedule error", "admitted")
				}
				// ...and with the uniform budget deliberately loosened
				// to 1, the per-layer curves alone must still reject
				// it, naming the layer whose budget it breaks.
				if p.BitErrorRate > maxBudget {
					o.ErrorBudget = 1
					if _, err := sched.Schedule(net, cfg, o); err == nil {
						r.diverge("fault/reject-layer/"+spec, "rejected", spec, "schedule error", "admitted")
					} else if !strings.Contains(err.Error(), "for layer") {
						r.diverge("fault/reject-layer-message/"+spec, "rejected", spec,
							`error naming "for layer"`, err)
					}
				}
				continue
			}
			if p.Name == mem.Nominal {
				continue // fault-free by construction
			}
			r.Swept = append(r.Swept, spec)
			plan, err := sched.Schedule(net, cfg, withFaults(bk.Name(), p.Name))
			if err != nil {
				r.diverge("fault/admit/"+spec, "admissible", spec, "ok", err)
				continue
			}
			scale := p.RetentionScale
			if scale <= 0 {
				scale = 1
			}
			pointInterval := time.Duration(float64(interval) * scale)
			for i, lp := range plan.Layers {
				l := net.Layers[i]
				// Admission soundness, calibrated: the layer's own curve
				// must accept the point's raw rate.
				if rel := training.LayerRelativeAccuracy(net.Name, i, len(net.Layers), p.BitErrorRate); rel < constraint {
					r.diverge("fault/curve/"+spec+"/"+l.Name, "curve", spec,
						fmt.Sprintf(">= %g", constraint), rel)
				}
				// Mask derivation: the point's rate scaled by the
				// layer's real cell exposure (lifetime vs the scaled
				// refresh interval), drawn over the layer's buffer
				// region (windowed), seeded from (seed, spec, layer).
				eff := fault.ExposureRate(p.BitErrorRate, lp.Analysis.Lifetimes.Max(), pointInterval)
				words := int(l.InputWords() + l.WeightWords() + l.OutputWords())
				if words > maskWindow {
					words = maskWindow
				}
				mseed := fault.MixSeed(seed, spec+"/"+l.Name)
				m, err := fault.New(words, fault.FlipRate(eff), mseed)
				if err != nil {
					return nil, fmt.Errorf("verify: deriving mask for %s under %s: %w", l.Name, spec, err)
				}
				again, err := fault.New(words, fault.FlipRate(eff), mseed)
				if err != nil {
					return nil, fmt.Errorf("verify: re-deriving mask for %s under %s: %w", l.Name, spec, err)
				}
				if h, h2 := m.Hash(), again.Hash(); h != h2 {
					r.diverge("fault/mask-bytes/"+spec+"/"+l.Name, "first draw", "redraw", h, h2)
				}
				for _, fl := range m.Flips {
					if fl.Word < 0 || fl.Word >= words || fl.Bit >= fixed.WordBits {
						r.diverge("fault/mask-range/"+spec+"/"+l.Name, "mask", spec,
							fmt.Sprintf("flips within %d words × %d bits", words, fixed.WordBits),
							fmt.Sprintf("(%d, %d)", fl.Word, fl.Bit))
						break
					}
				}
			}
			// Admission soundness, empirical: the pretrained demo model
			// under the point's raw rate, measured twice.
			if oracle != nil {
				rel, det := oracle.Relative(p.BitErrorRate)
				if !det {
					r.diverge("fault/accuracy-deterministic/"+spec, "first run", "rerun",
						"bit-identical accuracy", "differs")
				}
				if rel < oracle.Constraint {
					r.diverge("fault/accuracy/"+spec, "oracle", spec,
						fmt.Sprintf(">= %g", oracle.Constraint), rel)
				}
			}
		}
	}
	return r, nil
}

// CompareFaultFunctional drives a seeded fault mask through the
// word-accurate simulator on a backend's own functional buffer: the
// mask is drawn over the layer's output region and overlaid via
// fault.Wrap, so every distinct masked word — and nothing else — must
// come back corrupted. The simulator's word-error count is checked
// against the mask's own accounting, as is the wrapper's injection
// counter. Refreshing backends run the real issuer at the point's
// scaled conventional rate, which also proves refresh traffic cannot
// scrub a stuck overlay fault.
func CompareFaultFunctional(spec string, l models.ConvLayer, cfg hw.Config, rate float64, seed uint64) (*Report, error) {
	bk, pt, err := mem.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	if bk.Role() != mem.RoleBuffer {
		return nil, fmt.Errorf("verify: backend %q is not a buffer technology", bk.Name())
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	r := &Report{Layer: l, Config: cfg}
	banks, bankWords := cfg.Banks(), cfg.BankWords
	din, dw, dout := int(l.InputWords()), int(l.WeightWords()), int(l.OutputWords())
	if din+dw+dout > banks*bankWords {
		return nil, fmt.Errorf("verify: layer needs %d words, buffer has %d", din+dw+dout, banks*bankWords)
	}

	buf, err := bk.NewBuffer(banks, bankWords, seed, pt)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	used := (din + dw + dout + bankWords - 1) / bankWords
	refresher, _, err := pointRefresher(bk, buf, cfg, pt, used)
	if err != nil {
		return nil, err
	}

	outBase := din + dw
	mask, err := fault.New(dout, rate, fault.MixSeed(seed, spec+"/"+l.Name))
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	faulty := fault.Wrap(buf, mask, outBase)

	g := gen.New(seed)
	ins := g.Words(din)
	ws := g.Words(dw)
	res, err := sim.RunFunctional(l, fixed.Q88, ins, ws, faulty, refresher, cfg.PEs(), cfg.FrequencyHz)
	if err != nil {
		return nil, err
	}

	// Every masked word XORs a non-zero pattern into the final read-back,
	// and outputs are read exactly once, at the end — so word errors and
	// served injections both equal the mask's distinct-word count.
	want := len(mask.XorWords())
	if res.WordErrors != want {
		r.diverge("fault-functional/word-errors", "mask", spec, want, res.WordErrors)
	}
	if got := faulty.Injections(); got != want {
		r.diverge("fault-functional/injections", "mask", spec, want, got)
	}
	return r, nil
}
