// Package gen produces randomized-but-valid inputs for the conformance
// harness (internal/verify): convolutional layer shapes, accelerator
// configurations, tilings and scheduling options. Property tests, fuzz
// targets and cmd/rana-verify all draw from this one generator so a case
// that diverges anywhere can be reproduced everywhere from its seed.
//
// Everything is driven by the repository's deterministic SplitMix64
// stream: the same seed always yields the same case sequence.
package gen

import (
	"time"

	"rana/internal/bits"
	"rana/internal/energy"
	"rana/internal/fixed"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sched"
)

// Rand is a deterministic case generator.
type Rand struct {
	rng *bits.SplitMix64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{rng: bits.NewSplitMix64(seed)} }

// pick returns a uniform element of xs.
func pick[T any](r *Rand, xs []T) T { return xs[r.rng.Intn(len(xs))] }

// Layer returns a valid ConvLayer small enough for the cycle walker to
// trace in well under a millisecond. Roughly one in four layers is a
// grouped convolution, and kernels, strides and padding cover the shapes
// the benchmark zoo uses (1×1 .. 5×5, stride 1–2, with and without pad).
func (r *Rand) Layer() models.ConvLayer {
	for {
		l := models.ConvLayer{
			Name: "gen",
			N:    r.rng.Intn(24) + 1,
			M:    r.rng.Intn(24) + 1,
			H:    r.rng.Intn(14) + 5,
			K:    pick(r, []int{1, 3, 5}),
			S:    pick(r, []int{1, 1, 1, 2}),
		}
		l.L = l.H
		if r.rng.Intn(2) == 0 {
			l.P = l.K / 2
		}
		if r.rng.Intn(4) == 0 {
			g := pick(r, []int{2, 4})
			l.N = ((l.N-1)/g + 1) * g
			l.M = ((l.M-1)/g + 1) * g
			l.Groups = g
		}
		if l.Validate() == nil {
			return l
		}
	}
}

// TinyLayer returns an ungrouped layer small enough for the word-accurate
// functional simulator: every MAC is executed, so shapes stay in the
// tens-of-thousands-of-MACs range.
func (r *Rand) TinyLayer() models.ConvLayer {
	for {
		l := models.ConvLayer{
			Name: "gen-tiny",
			N:    r.rng.Intn(4) + 1,
			M:    r.rng.Intn(4) + 1,
			H:    r.rng.Intn(6) + 4,
			K:    pick(r, []int{1, 3}),
			S:    1,
		}
		l.L = l.H
		if r.rng.Intn(2) == 0 {
			l.P = l.K / 2
		}
		if l.Validate() == nil {
			return l
		}
	}
}

// Config returns a valid accelerator configuration spanning both array
// mappings, several clock rates and small eDRAM buffer geometries (a few
// banks, sometimes with a partial last bank).
func (r *Rand) Config() hw.Config {
	arrayM := pick(r, []int{4, 8, 16})
	arrayN := pick(r, []int{4, 8, 16})
	bankWords := pick(r, []int{512, 1024, 4096})
	banks := r.rng.Intn(6) + 2
	words := uint64(banks * bankWords)
	if r.rng.Intn(3) == 0 {
		// Partial last bank: capacity not a multiple of the bank size.
		words -= uint64(bankWords / 2)
	}
	cfg := hw.Config{
		Name:        "gen-accel",
		ArrayM:      arrayM,
		ArrayN:      arrayN,
		Mapping:     pick(r, []hw.Mapping{hw.MapOutputPixel, hw.MapOutputInput}),
		FrequencyHz: pick(r, []float64{100e6, 200e6, 606e6}),
		LocalInput:  8192,
		LocalOutput: 2048,
		LocalWeight: 8192,
		BufferWords: words,
		BufferTech:  energy.EDRAM,
		BankWords:   bankWords,
	}
	if cfg.Validate() != nil {
		panic("gen: invalid generated config")
	}
	return cfg
}

// Tiling returns a valid tiling for the layer: power-of-two or exact-fit
// tile sizes along each axis, biased toward the accelerator's natural
// tile. The tiling is not guaranteed to satisfy the core local-storage
// constraints — callers exploring infeasible space want that.
func (r *Rand) Tiling(l models.ConvLayer, cfg hw.Config) pattern.Tiling {
	g := l.Groups
	if g <= 1 {
		g = 1
	}
	axis := func(dim, array int) int {
		switch r.rng.Intn(3) {
		case 0:
			return min(array, dim)
		case 1:
			return dim
		default:
			v := 1 << r.rng.Intn(4)
			return min(v, dim)
		}
	}
	return pattern.Tiling{
		Tm: axis(l.M/g, cfg.ArrayM),
		Tn: axis(l.N/g, cfg.ArrayN),
		Tr: min(r.rng.Intn(3)+1, l.R()),
		Tc: axis(l.C(), cfg.ArrayN),
	}
}

// Pattern returns a uniform computation pattern.
func (r *Rand) Pattern() pattern.Kind { return pick(r, pattern.Kinds) }

// Options returns valid scheduling options: the RANA exploration space
// with a refresh controller at either the conventional or the tolerable
// interval, occasionally the SRAM-style no-refresh variant.
func (r *Rand) Options() sched.Options {
	o := sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: pick(r, []time.Duration{45 * time.Microsecond, 734 * time.Microsecond}),
	}
	switch r.rng.Intn(3) {
	case 0:
		o.Controller = memctrl.Conventional{}
	case 1:
		o.Controller = memctrl.RefreshOptimized{}
	default:
		o.Controller = nil
		o.RefreshInterval = 0
	}
	if err := o.Validate(); err != nil {
		panic("gen: invalid generated options")
	}
	return o
}

// Case is one complete oracle input.
type Case struct {
	Layer   models.ConvLayer
	Pattern pattern.Kind
	Tiling  pattern.Tiling
	Config  hw.Config
	Options sched.Options
}

// Case returns a complete randomized oracle input.
func (r *Rand) Case() Case {
	c := Case{
		Config:  r.Config(),
		Options: r.Options(),
		Pattern: r.Pattern(),
	}
	c.Layer = r.Layer()
	c.Tiling = r.Tiling(c.Layer, c.Config)
	return c
}

// Words returns n deterministic fixed-point words with small magnitudes
// (so accumulations stay in range), suitable as functional-simulation
// inputs and weights.
func (r *Rand) Words(n int) []fixed.Word {
	out := make([]fixed.Word, n)
	for i := range out {
		out[i] = fixed.Word(r.rng.Intn(2048) - 1024)
	}
	return out
}
