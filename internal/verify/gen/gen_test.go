package gen

import (
	"testing"
)

// TestGeneratedCasesValid: every generated case is well-formed — the
// layer and tiling validate, the tiling fits the layer, the config
// validates, and the options validate.
func TestGeneratedCasesValid(t *testing.T) {
	g := New(1)
	for i := 0; i < 500; i++ {
		c := g.Case()
		if err := c.Layer.Validate(); err != nil {
			t.Fatalf("case %d layer: %v (%+v)", i, err, c.Layer)
		}
		if err := c.Tiling.Validate(); err != nil {
			t.Fatalf("case %d tiling: %v (%+v)", i, err, c.Tiling)
		}
		if err := c.Config.Validate(); err != nil {
			t.Fatalf("case %d config: %v (%+v)", i, err, c.Config)
		}
		if err := c.Options.Validate(); err != nil {
			t.Fatalf("case %d options: %v (%+v)", i, err, c.Options)
		}
	}
}

// TestTinyLayersFitFunctionalSim: tiny layers are ungrouped and small.
func TestTinyLayersFitFunctionalSim(t *testing.T) {
	g := New(2)
	for i := 0; i < 200; i++ {
		l := g.TinyLayer()
		if err := l.Validate(); err != nil {
			t.Fatalf("tiny layer %d: %v (%+v)", i, err, l)
		}
		if l.Groups > 1 {
			t.Fatalf("tiny layer %d grouped: %+v", i, l)
		}
		if l.N > 4 || l.M > 4 || l.H > 9 {
			t.Fatalf("tiny layer %d too large: %+v", i, l)
		}
	}
}

// TestDeterminism: the same seed yields the same stream.
func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 50; i++ {
		ca, cb := a.Case(), b.Case()
		if ca.Layer != cb.Layer || ca.Tiling != cb.Tiling || ca.Pattern != cb.Pattern {
			t.Fatalf("case %d diverged between identical seeds", i)
		}
	}
	// Different seeds diverge somewhere in a short prefix.
	c, d := New(1), New(2)
	same := true
	for i := 0; i < 20; i++ {
		if c.Case().Layer != d.Case().Layer {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical prefixes")
	}
}

// TestWords: generated word vectors have the requested length and stay in
// the safe fixed-point range.
func TestWords(t *testing.T) {
	g := New(3)
	w := g.Words(1000)
	if len(w) != 1000 {
		t.Fatalf("got %d words", len(w))
	}
	for i, v := range w {
		if v < -1024 || v >= 1024 {
			t.Fatalf("word %d out of range: %d", i, v)
		}
	}
}
