package verify

import (
	"testing"
	"time"

	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sched"
	"rana/internal/verify/gen"
)

// zooOptions are the options cmd/rana-verify sweeps with: the paper's
// hybrid pattern set at the tolerable interval under the optimized
// controller.
func zooOptions() sched.Options {
	return sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: 734 * time.Microsecond,
		Controller:      memctrl.RefreshOptimized{},
	}
}

func TestCompareStrategiesOnZoo(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	for _, net := range models.Benchmarks() {
		t.Run(net.Name, func(t *testing.T) {
			r, err := CompareStrategies(net, cfg, zooOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !r.OK() {
				t.Error(r)
			}
			if r.PrunedEvaluated > r.ExhaustiveEvaluated {
				t.Errorf("pruned evaluated %d, exhaustive %d", r.PrunedEvaluated, r.ExhaustiveEvaluated)
			}
			t.Logf("%s", r)
		})
	}
}

func TestCompareStrategiesOnGeneratedNetworks(t *testing.T) {
	// Small random networks over random accelerators: some layers are
	// unschedulable on the drawn config, which exercises the oracle's
	// error-agreement arm alongside the byte-equality arm.
	g := gen.New(5)
	const nets = 25
	for i := 0; i < nets; i++ {
		cfg := g.Config()
		net := models.Network{Name: "gen"}
		for j := 0; j < 1+i%3; j++ {
			net.Layers = append(net.Layers, g.TinyLayer())
		}
		r, err := CompareStrategies(net, cfg, zooOptions())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !r.OK() {
			t.Errorf("case %d on %s:\n%s", i, cfg.Name, r)
		}
	}
}

func TestCompareStrategiesFlagsABrokenBound(t *testing.T) {
	// Sanity on the oracle itself: with the exploration intact the
	// report is clean, so a synthetic divergence must come from the
	// accounting arms. Force one by comparing two different networks'
	// encodings through the exported surface — a network whose pruned
	// schedule legitimately differs cannot be constructed without
	// breaking the bound, so instead check the report machinery renders
	// divergences at all.
	r := &StrategyReport{Network: "x"}
	r.diverge("strategy/plan-bytes", "exhaustive", "pruned", "a", "b")
	if r.OK() {
		t.Fatal("report with a divergence claims OK")
	}
	if s := r.String(); s == "" {
		t.Fatal("empty rendering")
	}
}
