package verify

// The parallelism/memoization differential oracle. PR 5 fans the Fig. 13
// exploration across a shared-bound worker pool and memoizes repeated
// layer shapes; both are pure throughput features — the plan bytes on
// the wire must not move. The determinism argument lives with the search
// code (strictly-greater pruning against an exact feasible bound, fold
// through the canonical preference order); this oracle is the check: the
// sequential exhaustive un-memoized reference is compared byte-for-byte
// against parallel pruned runs at several worker counts, with the memo
// on and off.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/sched"
	"rana/internal/sched/search"
)

// ParallelismReport collects one network's divergences across
// parallelism levels and memo modes.
type ParallelismReport struct {
	Network string
	// Levels are the worker counts that were compared (after resolving
	// the defaults).
	Levels      []int
	Divergences []Divergence
}

// OK reports whether every configuration reproduced the reference plan.
func (r *ParallelismReport) OK() bool { return len(r.Divergences) == 0 }

// String summarizes the report, one divergence per line.
func (r *ParallelismReport) String() string {
	if r.OK() {
		return fmt.Sprintf("%s: plans byte-identical at parallelism %v (memo on and off)",
			r.Network, r.Levels)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d parallelism divergences\n", r.Network, len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return strings.TrimRight(b.String(), "\n")
}

// DefaultParallelismLevels is the sweep the ISSUE prescribes: sequential,
// the smallest truly concurrent pool, and the full machine.
func DefaultParallelismLevels() []int {
	levels := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		levels = append(levels, p)
	}
	return levels
}

// CompareParallelism schedules one network under the sequential
// exhaustive un-memoized reference, then re-schedules it pruned AND
// exhaustive at every requested parallelism level with the layer-shape
// memo both enabled and disabled, and reports any configuration whose
// wire encoding differs from the reference bytes. Infeasible networks
// must be rejected by every configuration alike.
//
// levels defaults to DefaultParallelismLevels() when empty. opts.Search,
// opts.Parallelism, opts.Memo and opts.DisableMemo are overridden per
// run; everything else is compared as given.
func CompareParallelism(net models.Network, cfg hw.Config, opts sched.Options, levels ...int) (*ParallelismReport, error) {
	if len(levels) == 0 {
		levels = DefaultParallelismLevels()
	}
	r := &ParallelismReport{Network: net.Name, Levels: levels}

	variant := func(s search.Strategy, workers int, memo bool) sched.Options {
		o := opts
		o.Search = s
		o.Parallelism = workers
		o.Memo = nil
		o.DisableMemo = !memo
		return o
	}
	ref := variant(search.Exhaustive, 1, false)
	refPlan, refErr := sched.Schedule(net, cfg, ref)
	var refJSON []byte
	if refErr == nil {
		var err error
		refJSON, err = json.Marshal(sched.Encode(refPlan))
		if err != nil {
			return nil, fmt.Errorf("verify: encoding reference plan: %w", err)
		}
	}

	for _, workers := range levels {
		for _, s := range []search.Strategy{search.Exhaustive, search.Pruned} {
			for _, memo := range []bool{false, true} {
				name := fmt.Sprintf("%s/p%d/memo=%t", s, workers, memo)
				plan, err := sched.Schedule(net, cfg, variant(s, workers, memo))
				if (refErr == nil) != (err == nil) {
					r.diverge2("parallel/error/"+name, errString(refErr), errString(err))
					continue
				}
				if refErr != nil {
					if refErr.Error() != err.Error() {
						r.diverge2("parallel/error-text/"+name, refErr, err)
					}
					continue
				}
				got, err := json.Marshal(sched.Encode(plan))
				if err != nil {
					return nil, fmt.Errorf("verify: encoding %s plan: %w", name, err)
				}
				if string(got) != string(refJSON) {
					r.diverge2("parallel/plan-bytes/"+name,
						fmt.Sprintf("%.120s", refJSON), fmt.Sprintf("%.120s", got))
				}
			}
		}
	}
	return r, nil
}

// diverge2 appends a divergence against the sequential reference.
func (r *ParallelismReport) diverge2(check string, want, got any) {
	r.Divergences = append(r.Divergences, Divergence{
		Check:  check,
		Models: [2]string{"sequential-exhaustive", "parallel"},
		Want:   fmt.Sprint(want),
		Got:    fmt.Sprint(got),
	})
}
