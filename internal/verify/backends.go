package verify

// The memory-backend differential oracle. The scheduler now prices plans
// through pluggable technology backends (internal/mem) with discrete
// operating points as a search axis. Two properties keep that seam
// honest, and both are *checked* here rather than argued:
//
//   - the default backend is the historical hard-wired path, down to the
//     bit: scheduling with an explicit default backend name must
//     reproduce the legacy (empty-backend) plan byte-for-byte on the
//     wire;
//
//   - every backend in the registry, and every admissible operating
//     point, must yield plans that satisfy the full invariant suite and
//     never report less energy than the admissible lower bound admits
//     at the chosen point — an approximate point that "won" by pricing
//     below its own bound would mean the branch-and-bound is unsound on
//     that backend.
//
// CompareBackendFunctional closes the loop end to end on one small
// layer: the backend's own failure injector (its functional buffer,
// built at a non-default operating point with the scaled retention
// curve) must agree with the analytical timing model and, refreshed at
// the point's scaled conventional rate, reproduce the perfect-memory
// reference word-for-word.

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"rana/internal/fixed"
	"rana/internal/hw"
	"rana/internal/mem"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/retention"
	"rana/internal/sched"
	"rana/internal/sim"
	"rana/internal/verify/gen"
)

// BackendReport collects one network's backend divergences.
type BackendReport struct {
	Network string
	// Swept lists the backend specs that were scheduled ("edram",
	// "approx-dram@v0.8", ...), in sweep order.
	Swept       []string
	Divergences []Divergence
}

// OK reports whether the backends agreed.
func (r *BackendReport) OK() bool { return len(r.Divergences) == 0 }

// String summarizes the report, one divergence per line.
func (r *BackendReport) String() string {
	if r.OK() {
		return fmt.Sprintf("%s: backends agree (%s)", r.Network, strings.Join(r.Swept, ", "))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d backend divergences\n", r.Network, len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return strings.TrimRight(b.String(), "\n")
}

// diverge appends a divergence between two rendered values.
func (r *BackendReport) diverge(check, wantModel, gotModel string, want, got any) {
	r.Divergences = append(r.Divergences, Divergence{
		Check:  check,
		Models: [2]string{wantModel, gotModel},
		Want:   fmt.Sprint(want),
		Got:    fmt.Sprint(got),
	})
}

// CompareBackends schedules one network across the whole backend
// registry and reports every disagreement:
//
//   - the legacy spelling (no backend named) and the explicit default
//     backend must produce byte-identical wire encodings — the backend
//     seam is a pure refactor on the default path;
//
//   - every buffer backend, searched over its admissible operating
//     points, must produce a plan that passes CheckPlan and whose
//     per-layer energies are at least the admissible lower bound at the
//     layer's chosen (pattern, tiling, point);
//
//   - every non-nominal operating point within the error budget, pinned,
//     must do the same, and its chosen candidates must still agree with
//     the cycle walker (the analytical↔walker differential is
//     technology-independent and must stay that way).
//
// opts.Backend and opts.OperatingPoint are overridden per run;
// everything else is compared as given.
func CompareBackends(net models.Network, cfg hw.Config, opts sched.Options, tol Tolerances) (*BackendReport, error) {
	r := &BackendReport{Network: net.Name}

	withBackend := func(backend, point string) sched.Options {
		o := opts
		o.Backend = backend
		o.OperatingPoint = point
		return o
	}

	// The default backend is a pure refactor: empty spelling ≡ explicit
	// default name, byte for byte on the wire.
	legacyPlan, legacyErr := sched.Schedule(net, cfg, withBackend("", ""))
	explicitPlan, explicitErr := sched.Schedule(net, cfg, withBackend(mem.DefaultName(cfg.BufferTech), ""))
	if (legacyErr == nil) != (explicitErr == nil) {
		r.diverge("backend/default-error", "legacy", "explicit", errString(legacyErr), errString(explicitErr))
		return r, nil
	}
	if legacyErr != nil {
		if legacyErr.Error() != explicitErr.Error() {
			r.diverge("backend/default-error-text", "legacy", "explicit", legacyErr, explicitErr)
		}
		return r, nil
	}
	legacyJSON, err := json.Marshal(sched.Encode(legacyPlan))
	if err != nil {
		return nil, fmt.Errorf("verify: encoding legacy plan: %w", err)
	}
	explicitJSON, err := json.Marshal(sched.Encode(explicitPlan))
	if err != nil {
		return nil, fmt.Errorf("verify: encoding explicit-default plan: %w", err)
	}
	if string(legacyJSON) != string(explicitJSON) {
		r.diverge("backend/default-bytes", "legacy", "explicit",
			fmt.Sprintf("%.120s", legacyJSON), fmt.Sprintf("%.120s", explicitJSON))
	}

	// checkSpec schedules under one (backend, pinned point) and runs the
	// invariant suite plus the per-layer bound check. walker additionally
	// cross-checks each chosen candidate against the cycle walker.
	checkSpec := func(spec string, o sched.Options, walker bool) error {
		r.Swept = append(r.Swept, spec)
		plan, err := sched.Schedule(net, cfg, o)
		if err != nil {
			r.diverge("backend/schedule/"+spec, "schedulable", spec, "ok", err)
			return nil
		}
		for _, v := range CheckPlan(plan, tol) {
			r.diverge("backend/invariant/"+spec, "invariant", spec, v.Invariant, v.Detail)
		}
		for i, lp := range plan.Layers {
			l := net.Layers[i]
			po := o
			po.OperatingPoint = lp.Point
			if po.OperatingPoint == "" {
				po.OperatingPoint = mem.Nominal
			}
			lb, err := sched.LowerBound(l, cfg, po, lp.Analysis.Pattern, lp.Analysis.Tiling)
			if err != nil {
				return fmt.Errorf("verify: bounding %s under %s: %w", l.Name, spec, err)
			}
			if got := lp.Energy.Total(); got < lb {
				r.diverge("backend/bound/"+spec+"/"+l.Name, "bound", spec,
					fmt.Sprintf(">= %g pJ", lb), got)
			}
			if walker {
				if lr := CompareLayer(l, lp.Analysis.Pattern, lp.Analysis.Tiling, cfg, tol); !lr.OK() {
					for _, d := range lr.Divergences {
						r.diverge("backend/walker/"+spec+"/"+l.Name, d.Models[0], d.Models[1], d.Want, d.Got)
					}
				}
			}
		}
		return nil
	}

	budget := opts.ErrorBudget
	if budget <= 0 {
		budget = retention.TolerableFailureRate
	}
	for _, bk := range mem.Buffers() {
		name := bk.Name()
		// The unpinned search over the backend's admissible points.
		if err := checkSpec(name, withBackend(name, ""), false); err != nil {
			return nil, err
		}
		// Every admissible non-nominal point, pinned — the end-to-end
		// path a degraded or operator-pinned request takes.
		for _, p := range bk.Points() {
			if p.Name == mem.Nominal || p.BitErrorRate > budget {
				continue
			}
			if err := checkSpec(name+"@"+p.Name, withBackend(name, p.Name), true); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// CompareBackendFunctional executes one small ungrouped layer word by
// word through a backend's own functional buffer at the spec'd
// operating point ("backend" or "backend@point") and checks the outcome
// against the other models: modeled execution time must equal the
// in-bounds MAC count at the array's throughput; for refreshing
// backends the issued refresh words must equal the tick model's
// prediction at the point's scaled interval; and — refreshed at the
// point's scaled conventional (weakest-cell) rate — the output must be
// word-exact against the perfect-memory reference. The layer's working
// set must fit the configured buffer.
func CompareBackendFunctional(spec string, l models.ConvLayer, cfg hw.Config, seed uint64, tol Tolerances) (*Report, error) {
	bk, pt, err := mem.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	if bk.Role() != mem.RoleBuffer {
		return nil, fmt.Errorf("verify: backend %q is not a buffer technology", bk.Name())
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	r := &Report{Layer: l, Config: cfg}
	banks, bankWords := cfg.Banks(), cfg.BankWords
	din, dw, dout := int(l.InputWords()), int(l.WeightWords()), int(l.OutputWords())
	if din+dw+dout > banks*bankWords {
		return nil, fmt.Errorf("verify: layer needs %d words, buffer has %d", din+dw+dout, banks*bankWords)
	}

	buf, err := bk.NewBuffer(banks, bankWords, seed, pt)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}

	// Refreshing backends run the real issuer at the point's scaled
	// conventional rate — the weakest surviving cell of the scaled
	// retention curve sets the no-error refresh interval, exactly as the
	// paper's 45 µs does at nominal.
	used := (din + dw + dout + bankWords - 1) / bankWords
	refresher, div, err := pointRefresher(bk, buf, cfg, pt, used)
	if err != nil {
		return nil, err
	}

	g := gen.New(seed)
	ins := g.Words(din)
	ws := g.Words(dw)
	res, err := sim.RunFunctional(l, fixed.Q88, ins, ws, buf, refresher, cfg.PEs(), cfg.FrequencyHz)
	if err != nil {
		return nil, err
	}

	// Execution time: the functional clock advances one cycle per PEs()
	// in-bounds MACs, regardless of the memory technology.
	cycles := inBoundsMACs(l) / uint64(cfg.PEs())
	want := time.Duration(float64(cycles) / cfg.FrequencyHz * float64(time.Second))
	if !tol.closeDur(res.ExecTime, want) {
		r.diverge("backend-functional/exec-time", "analytical", spec, want, res.ExecTime)
	}

	// Refresh words: the issuer must have fired exactly the tick-model
	// prediction over the execution span.
	if refresher != nil {
		predicted := memctrl.Pulses(res.ExecTime, div.Period()) * uint64(used) * uint64(bankWords)
		if res.RefreshWords != predicted {
			r.diverge("backend-functional/refresh-words", "tick", spec, predicted, res.RefreshWords)
		}
	}

	// Correctness: at (or below) the scaled conventional rate — or on a
	// non-decaying technology — the buffered execution must reproduce
	// the perfect-memory reference exactly.
	if res.WordErrors != 0 {
		r.diverge("backend-functional/word-errors", "reference", spec, 0, res.WordErrors)
	}
	return r, nil
}

// pointRefresher builds the real refresh machinery (divider + issuer
// with the first used banks flagged) for a refreshing backend's buffer,
// at the operating point's scaled conventional interval. Non-refreshing
// backends get (nil, nil, nil).
func pointRefresher(bk mem.Backend, buf mem.Buffer, cfg hw.Config, pt mem.OperatingPoint, used int) (*sim.Refresher, *memctrl.Divider, error) {
	if !bk.Refreshes() {
		return nil, nil, nil
	}
	target, ok := buf.(memctrl.BankRefresher)
	if !ok {
		return nil, nil, fmt.Errorf("verify: refreshing backend %q built a non-refreshable buffer %T", bk.Name(), buf)
	}
	scale := pt.RetentionScale
	if scale <= 0 {
		scale = 1
	}
	interval := time.Duration(float64(retention.TypicalRetentionTime) * scale)
	div, err := memctrl.NewDivider(cfg.FrequencyHz, interval)
	if err != nil {
		return nil, nil, err
	}
	banks := cfg.Banks()
	issuer, err := memctrl.NewIssuer(div, banks)
	if err != nil {
		return nil, nil, err
	}
	flags := make([]bool, banks)
	for i := 0; i < used && i < banks; i++ {
		flags[i] = true
	}
	if err := issuer.SetFlags(flags); err != nil {
		return nil, nil, err
	}
	return &sim.Refresher{Issuer: issuer, Target: target}, div, nil
}
