package verify

// The search-strategy differential oracle. The Fig. 13 exploration now
// runs behind pluggable strategies (internal/sched/search): the
// exhaustive reference, the pruned branch-and-bound default, and the
// budgeted beam. Pruning is only sound if the lower bound is admissible
// and the tie-break order is preserved — properties that are argued in
// the bound's documentation and *checked* here: the pruned run must
// reproduce the exhaustive plan byte-for-byte on the wire while
// provably doing no more exact-evaluation work.

import (
	"encoding/json"
	"fmt"
	"strings"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/sched"
	"rana/internal/sched/search"
)

// StrategyReport collects one network's strategy divergences.
type StrategyReport struct {
	Network string
	// ExhaustiveEvaluated and PrunedEvaluated are the whole-network
	// exact-evaluation counts — the work the branch-and-bound exists to
	// avoid. OK() does not compare them (equal counts are legal when
	// nothing can be pruned); the caller may report the saving.
	ExhaustiveEvaluated int
	PrunedEvaluated     int
	Divergences         []Divergence
}

// OK reports whether the strategies agreed.
func (r *StrategyReport) OK() bool { return len(r.Divergences) == 0 }

// String summarizes the report, one divergence per line.
func (r *StrategyReport) String() string {
	if r.OK() {
		return fmt.Sprintf("%s: strategies agree (%d exact evaluations exhaustive, %d pruned)",
			r.Network, r.ExhaustiveEvaluated, r.PrunedEvaluated)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d strategy divergences\n", r.Network, len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return strings.TrimRight(b.String(), "\n")
}

// diverge appends a divergence between two rendered values.
func (r *StrategyReport) diverge(check, wantModel, gotModel string, want, got any) {
	r.Divergences = append(r.Divergences, Divergence{
		Check:  check,
		Models: [2]string{wantModel, gotModel},
		Want:   fmt.Sprint(want),
		Got:    fmt.Sprint(got),
	})
}

// CompareStrategies schedules one network under the exhaustive reference
// and the pruned branch-and-bound and reports every disagreement:
//
//   - the two plans must be byte-identical in the shared wire encoding
//     (same argmin AND same tie-break at every layer);
//   - per layer, both strategies must stream the same candidate set, and
//     the pruned run's evaluated+pruned must account for exactly that
//     set — no candidate silently dropped;
//   - per layer, pruning must never evaluate more than exhaustion;
//   - the beam's plan, when feasible, must cost at least the exact
//     optimum — a beam that "wins" would mean the exact argmin is wrong.
//
// Infeasible networks must be rejected by both strategies alike; one
// succeeding where the other fails is itself a divergence. opts.Search
// and opts.BeamWidth are overridden per run; everything else (patterns,
// refresh interval, controller) is compared as given.
func CompareStrategies(net models.Network, cfg hw.Config, opts sched.Options) (*StrategyReport, error) {
	r := &StrategyReport{Network: net.Name}

	withStrategy := func(s search.Strategy) sched.Options {
		o := opts
		o.Search = s
		return o
	}
	exPlan, exErr := sched.Schedule(net, cfg, withStrategy(search.Exhaustive))
	prPlan, prErr := sched.Schedule(net, cfg, withStrategy(search.Pruned))

	// Feasibility must agree before anything else is comparable.
	if (exErr == nil) != (prErr == nil) {
		r.diverge("strategy/error", "exhaustive", "pruned", errString(exErr), errString(prErr))
		return r, nil
	}
	if exErr != nil {
		if exErr.Error() != prErr.Error() {
			r.diverge("strategy/error-text", "exhaustive", "pruned", exErr, prErr)
		}
		return r, nil
	}

	// The wire encoding is the equality domain: it is what the golden
	// files, the service and the CLI all emit, so byte equality here is
	// exactly "no observable behavior change".
	exJSON, err := json.Marshal(sched.Encode(exPlan))
	if err != nil {
		return nil, fmt.Errorf("verify: encoding exhaustive plan: %w", err)
	}
	prJSON, err := json.Marshal(sched.Encode(prPlan))
	if err != nil {
		return nil, fmt.Errorf("verify: encoding pruned plan: %w", err)
	}
	if string(exJSON) != string(prJSON) {
		r.diverge("strategy/plan-bytes", "exhaustive", "pruned",
			fmt.Sprintf("%.120s", exJSON), fmt.Sprintf("%.120s", prJSON))
	}

	// Per-layer work accounting through the same exploration entry point
	// the scheduler uses.
	for _, l := range net.Layers {
		_, es, err := sched.ExploreLayer(l, cfg, withStrategy(search.Exhaustive))
		if err != nil {
			return nil, fmt.Errorf("verify: exhaustive exploration of %q: %w", l.Name, err)
		}
		_, ps, err := sched.ExploreLayer(l, cfg, withStrategy(search.Pruned))
		if err != nil {
			return nil, fmt.Errorf("verify: pruned exploration of %q: %w", l.Name, err)
		}
		r.ExhaustiveEvaluated += es.Evaluated
		r.PrunedEvaluated += ps.Evaluated
		if es.Candidates != ps.Candidates {
			r.diverge("strategy/candidates/"+l.Name, "exhaustive", "pruned", es.Candidates, ps.Candidates)
		}
		if ps.Evaluated+ps.Pruned != ps.Candidates {
			r.diverge("strategy/accounting/"+l.Name, "candidates", "evaluated+pruned",
				ps.Candidates, ps.Evaluated+ps.Pruned)
		}
		if ps.Evaluated > es.Evaluated {
			r.diverge("strategy/work/"+l.Name, "exhaustive", "pruned", es.Evaluated, ps.Evaluated)
		}
	}

	// The beam is allowed to lose — it prices a budgeted subset — but
	// never to win: a cheaper beam plan would falsify the exact argmin.
	// Its feasibility fallback means it must schedule whatever the exact
	// strategies can.
	beamPlan, beamErr := sched.Schedule(net, cfg, withStrategy(search.Beam))
	if beamErr != nil {
		r.diverge("strategy/beam-error", "exhaustive", "beam", "ok", beamErr)
	} else if beamPlan.Energy.Total() < exPlan.Energy.Total() {
		r.diverge("strategy/beam-energy", "exhaustive", "beam",
			fmt.Sprintf(">= %g pJ", exPlan.Energy.Total()), beamPlan.Energy.Total())
	}
	return r, nil
}

// errString renders an error for a divergence, mapping nil to "ok".
func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
