package verify

// The incremental-pricing differential oracle. The incremental bound
// evaluator (sched's pricingCtx + PrefixMemo) must be *invisible*: it
// caches integer partial terms, so every lower bound it returns is
// bit-identical to the stateless reference, and therefore every pruning
// decision, every plan byte and every work counter must match with
// incremental pricing on and off. This oracle is the check: plans are
// compared byte-for-byte at the strategies that consume bounds (pruned
// branch-and-bound and beam), sequentially and at full parallelism, and
// the sequential per-layer work accounting (candidates bounded, pruned,
// exactly priced) is compared counter-for-counter — a pruning decision
// that moved would surface here even if the argmin happened to survive.

import (
	"encoding/json"
	"fmt"
	"strings"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/sched"
	"rana/internal/sched/search"
)

// IncrementalReport collects one network's divergences between stateless
// and incremental bound pricing.
type IncrementalReport struct {
	Network string
	// Layers is the layer count whose sequential work accounting was
	// compared.
	Layers      int
	Divergences []Divergence
}

// OK reports whether incremental pricing was observationally invisible.
func (r *IncrementalReport) OK() bool { return len(r.Divergences) == 0 }

// String summarizes the report, one divergence per line.
func (r *IncrementalReport) String() string {
	if r.OK() {
		return fmt.Sprintf("%s: incremental pricing invisible (plans byte-identical, %d layers' work accounting identical)",
			r.Network, r.Layers)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d incremental-pricing divergences\n", r.Network, len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return strings.TrimRight(b.String(), "\n")
}

func (r *IncrementalReport) diverge(check string, want, got any) {
	r.Divergences = append(r.Divergences, Divergence{
		Check:  check,
		Models: [2]string{"stateless-bound", "incremental-bound"},
		Want:   fmt.Sprint(want),
		Got:    fmt.Sprint(got),
	})
}

// CompareIncremental schedules one network with incremental bound
// pricing disabled (the stateless reference) and enabled, across the
// bound-consuming strategies and both the sequential and parallel
// paths, and reports any divergence in plan bytes. It then re-explores
// every layer sequentially under both modes and compares the search
// work counters exactly: identical Bounded/Pruned/Evaluated splits
// prove the pruning decisions — not just the winners — were identical.
//
// opts.Search, opts.Parallelism, opts.Memo, opts.DisableMemo, opts.Prefix
// and opts.DisableIncremental are overridden per run; everything else is
// compared as given.
func CompareIncremental(net models.Network, cfg hw.Config, opts sched.Options) (*IncrementalReport, error) {
	r := &IncrementalReport{Network: net.Name, Layers: len(net.Layers)}

	variant := func(s search.Strategy, workers int, incremental bool) sched.Options {
		o := opts
		o.Search = s
		o.Parallelism = workers
		o.Memo = nil
		o.DisableMemo = true // every layer must actually explore
		o.Prefix = nil
		o.DisableIncremental = !incremental
		return o
	}

	for _, s := range []search.Strategy{search.Pruned, search.Beam} {
		for _, workers := range []int{1, 0} { // sequential, then GOMAXPROCS
			name := fmt.Sprintf("%s/p%d", s, workers)
			refPlan, refErr := sched.Schedule(net, cfg, variant(s, workers, false))
			incPlan, incErr := sched.Schedule(net, cfg, variant(s, workers, true))
			if (refErr == nil) != (incErr == nil) {
				r.diverge("incremental/error/"+name, errString(refErr), errString(incErr))
				continue
			}
			if refErr != nil {
				if refErr.Error() != incErr.Error() {
					r.diverge("incremental/error-text/"+name, refErr, incErr)
				}
				continue
			}
			refJSON, err := json.Marshal(sched.Encode(refPlan))
			if err != nil {
				return nil, fmt.Errorf("verify: encoding reference plan: %w", err)
			}
			incJSON, err := json.Marshal(sched.Encode(incPlan))
			if err != nil {
				return nil, fmt.Errorf("verify: encoding incremental plan: %w", err)
			}
			if string(refJSON) != string(incJSON) {
				r.diverge("incremental/plan-bytes/"+name,
					fmt.Sprintf("%.120s", refJSON), fmt.Sprintf("%.120s", incJSON))
			}
		}
	}

	// Work accounting: sequential pruned exploration per layer. The
	// counters are deterministic at Parallelism 1, so any difference is
	// a pruning decision that moved between the two bound evaluators.
	for _, l := range net.Layers {
		ref := variant(search.Pruned, 1, false)
		inc := variant(search.Pruned, 1, true)
		_, refStats, refErr := sched.ExploreLayer(l, cfg, ref)
		_, incStats, incErr := sched.ExploreLayer(l, cfg, inc)
		if (refErr == nil) != (incErr == nil) {
			r.diverge("incremental/layer-error/"+l.Name, errString(refErr), errString(incErr))
			continue
		}
		if refStats != incStats {
			r.diverge("incremental/work/"+l.Name,
				fmt.Sprintf("%+v", refStats), fmt.Sprintf("%+v", incStats))
		}
	}
	return r, nil
}
