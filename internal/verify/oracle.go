package verify

import (
	"fmt"
	"time"

	"rana/internal/edram"
	"rana/internal/fixed"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/retention"
	"rana/internal/sched"
	"rana/internal/sim"
	"rana/internal/verify/gen"
)

// CompareLayer runs the analytical model (pattern.Analyze) and the cycle
// walker (sim.Walk) on one (layer, pattern, tiling, config) and reports
// every disagreement: MAC accounting, cycle counts, execution time,
// per-type buffer traffic and per-type data lifetimes, plus the internal
// sanity bounds both models must respect (no lifetime outlives the
// execution window, utilization stays in (0,1], off-chip traffic covers
// the compulsory transfers). Inputs must be valid — Analyze and Walk
// panic on malformed layers or tilings by design.
func CompareLayer(l models.ConvLayer, k pattern.Kind, t pattern.Tiling, cfg hw.Config, tol Tolerances) *Report {
	r := &Report{Layer: l, Pattern: k, Tiling: t, Config: cfg}
	a := pattern.MustAnalyze(l, k, t, cfg)
	w := sim.Walk(l, k, t, cfg)

	// MAC accounting: the analytical α must equal the layer's own count.
	if a.MACs != l.MACs() {
		r.diverge("macs", "models", "analytical", l.MACs(), a.MACs)
	}

	// Cycle counts and their wall-time conversions.
	if a.Cycles != w.Cycles {
		r.diverge("cycles", "analytical", "walker", a.Cycles, w.Cycles)
	}
	if !tol.closeDur(a.ExecTime, w.ExecTime) {
		r.diverge("exec-time", "analytical", "walker", a.ExecTime, w.ExecTime)
	}

	// Buffer traffic must agree word-for-word, per data type.
	if a.BufferTraffic.Inputs != w.BufferTraffic.Inputs {
		r.diverge("buffer-traffic/inputs", "analytical", "walker", a.BufferTraffic.Inputs, w.BufferTraffic.Inputs)
	}
	if a.BufferTraffic.Outputs != w.BufferTraffic.Outputs {
		r.diverge("buffer-traffic/outputs", "analytical", "walker", a.BufferTraffic.Outputs, w.BufferTraffic.Outputs)
	}
	if a.BufferTraffic.Weights != w.BufferTraffic.Weights {
		r.diverge("buffer-traffic/weights", "analytical", "walker", a.BufferTraffic.Weights, w.BufferTraffic.Weights)
	}

	// Data lifetimes: the walker's empirical residency maxima must match
	// the closed-form Eqs. 4–5 / 9–10 within the rounding tolerance.
	if !tol.closeDur(a.Lifetimes.Input, w.Lifetimes.Input) {
		r.diverge("lifetime/input", "analytical", "walker", a.Lifetimes.Input, w.Lifetimes.Input)
	}
	if !tol.closeDur(a.Lifetimes.Output, w.Lifetimes.Output) {
		r.diverge("lifetime/output", "analytical", "walker", a.Lifetimes.Output, w.Lifetimes.Output)
	}
	if !tol.closeDur(a.Lifetimes.Weight, w.Lifetimes.Weight) {
		r.diverge("lifetime/weight", "analytical", "walker", a.Lifetimes.Weight, w.Lifetimes.Weight)
	}

	// No datum can rest in the buffer longer than the layer executes.
	exec := a.ExecTime + tol.Duration
	for _, lt := range []struct {
		name string
		a, w time.Duration
	}{
		{"input", a.Lifetimes.Input, w.Lifetimes.Input},
		{"output", a.Lifetimes.Output, w.Lifetimes.Output},
		{"weight", a.Lifetimes.Weight, w.Lifetimes.Weight},
	} {
		if lt.a > exec {
			r.diverge("lifetime-bound/"+lt.name, "analytical", "analytical", "<= exec "+a.ExecTime.String(), lt.a)
		}
		if lt.w > exec {
			r.diverge("lifetime-bound/"+lt.name, "walker", "walker", "<= exec "+a.ExecTime.String(), lt.w)
		}
	}

	// Utilization is a fraction of the array's peak.
	if a.Utilization <= 0 || a.Utilization > 1+1e-12 {
		r.diverge("utilization", "analytical", "analytical", "(0,1]", a.Utilization)
	}

	// Off-chip traffic must cover the compulsory transfers: every weight
	// is fetched at least once and every output shipped at least once.
	if a.DDRTraffic.Weights < l.WeightWords() {
		r.diverge("ddr-traffic/weights", "models", "analytical", ">= "+fmt.Sprint(l.WeightWords()), a.DDRTraffic.Weights)
	}
	if a.DDRTraffic.Outputs < l.OutputWords() {
		r.diverge("ddr-traffic/outputs", "models", "analytical", ">= "+fmt.Sprint(l.OutputWords()), a.DDRTraffic.Outputs)
	}

	// FitsBuffer must be exactly the capacity predicate on the storage
	// requirement.
	if a.FitsBuffer != (a.BufferStorage.Total() <= cfg.BufferWords) {
		r.diverge("fits-buffer", "analytical", "analytical",
			a.BufferStorage.Total() <= cfg.BufferWords, a.FitsBuffer)
	}
	return r
}

// countingRefresher tallies word-refresh operations like an eDRAM bank
// would, without modeling cells — the tick-model endpoint CompareRefresh
// drives the real Issuer against.
type countingRefresher struct {
	banks, bankWords int
}

func (c countingRefresher) Banks() int { return c.banks }
func (c countingRefresher) RefreshBank(bank int, _ time.Duration) uint64 {
	return uint64(c.bankWords)
}

// CompareRefresh cross-checks the analytical refresh-word accounting
// (memctrl.RefreshWords, the γ of Eq. 14) against the tick-level
// controller model of Fig. 14: a real Divider + Issuer programmed with
// the plan's expanded per-bank refresh flags and advanced across the
// layer's execution window. The two models quantize the refresh period
// differently (the divider rounds down to whole reference cycles), so
// pulse counts may differ by the derived quantization bound; per-pulse
// word counts must agree exactly. opts must carry a controller and a
// positive interval.
func CompareRefresh(a pattern.Analysis, cfg hw.Config, opts sched.Options, tol Tolerances) (*Report, error) {
	if opts.Controller == nil || opts.RefreshInterval <= 0 {
		return nil, fmt.Errorf("verify: CompareRefresh needs a controller and a positive interval")
	}
	r := &Report{Layer: a.Layer, Pattern: a.Pattern, Tiling: a.Tiling, Config: cfg}
	banks, bankWords := cfg.Banks(), cfg.BankWords

	alloc := memctrl.Allocate(a.BufferStorage, bankWords, banks)
	guarded := time.Duration(float64(opts.RefreshInterval) * opts.Guard())
	needs := memctrl.NeedsFor(a.Lifetimes, guarded)
	analytic := memctrl.RefreshWords(opts.Controller, a.ExecTime, opts.RefreshInterval,
		alloc, needs, banks, bankWords)

	// Expand the flags the way the execution phase would, then check the
	// expansion against the controller's per-pulse arithmetic: the two
	// are independent paths from (alloc, needs) to refreshed words.
	var flags []bool
	switch opts.Controller.(type) {
	case memctrl.Conventional:
		flags = make([]bool, banks)
		if needs.Any() {
			for i := range flags {
				flags[i] = true
			}
		}
	default:
		flags = sched.LayerPlan{Needs: needs, Alloc: alloc}.RefreshFlags(banks)
	}
	flagged := 0
	for _, f := range flags {
		if f {
			flagged++
		}
	}
	perPulse := opts.Controller.WordsPerPulse(alloc, needs, banks, bankWords)
	if uint64(flagged)*uint64(bankWords) != perPulse {
		r.diverge("refresh/words-per-pulse", "flags", "controller",
			uint64(flagged)*uint64(bankWords), perPulse)
	}

	// Drive the real issuer across the execution window.
	div, err := memctrl.NewDivider(cfg.FrequencyHz, opts.RefreshInterval)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	issuer, err := memctrl.NewIssuer(div, banks)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	if err := issuer.SetFlags(flags); err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	issuer.AdvanceTo(a.ExecTime, countingRefresher{banks: banks, bankWords: bankWords})
	tick := issuer.Issued()

	// The issuer must fire exactly floor(exec/period) pulses at the
	// divider's achieved period.
	achievedPulses := memctrl.Pulses(a.ExecTime, div.Period())
	if want := achievedPulses * uint64(flagged) * uint64(bankWords); tick != want {
		r.diverge("refresh/tick-words", "divider", "issuer", want, tick)
	}

	// The analytical pulse count at the requested interval may lag the
	// tick count only by the divider's quantization: the achieved period
	// is shorter than the interval by less than one reference cycle, so
	// over C executed cycles the drift is bounded by C/ratio² pulses.
	analyticPulses := memctrl.Pulses(a.ExecTime, opts.RefreshInterval)
	drift := float64(a.Cycles)/(float64(div.Ratio())*float64(div.Ratio())) + 1
	if float64(achievedPulses)-float64(analyticPulses) > drift || achievedPulses < analyticPulses {
		r.diverge("refresh/pulses", "analytical", "tick",
			fmt.Sprintf("%d (+%.0f quantization)", analyticPulses, drift), achievedPulses)
	}

	// And the analytical total must be exactly pulses × per-pulse words.
	if want := analyticPulses * perPulse; analytic != want {
		r.diverge("refresh/analytic-words", "pulses×perPulse", "RefreshWords", want, analytic)
	}
	return r, nil
}

// inBoundsMACs counts the MACs the functional simulator actually
// executes: padding positions contribute no arithmetic, so the count is
// the number of in-bounds (input row, input column) pairs summed over
// output positions, times M·N.
func inBoundsMACs(l models.ConvLayer) uint64 {
	R, C := l.R(), l.C()
	var perChannel uint64
	for or := 0; or < R; or++ {
		for oc := 0; oc < C; oc++ {
			for kr := 0; kr < l.K; kr++ {
				ir := or*l.S + kr - l.P
				if ir < 0 || ir >= l.H {
					continue
				}
				for kc := 0; kc < l.K; kc++ {
					ic := oc*l.S + kc - l.P
					if ic >= 0 && ic < l.L {
						perChannel++
					}
				}
			}
		}
	}
	return perChannel * uint64(l.M) * uint64(l.N)
}

// CompareFunctional executes one small ungrouped layer word-by-word
// through a decaying eDRAM buffer with the refresh machinery live, and
// checks the functional outcome against the other models: the modeled
// execution time must equal the in-bounds MAC count at the array's
// throughput, the issued refresh words must equal the tick model's
// prediction, and — when the refresh interval is at or below the
// conventional 45 µs weakest-cell rate — the output must be word-exact
// against the perfect-memory reference. The layer's working set must fit
// the configured buffer.
func CompareFunctional(l models.ConvLayer, cfg hw.Config, interval time.Duration, seed uint64, tol Tolerances) (*Report, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	r := &Report{Layer: l, Config: cfg}
	banks, bankWords := cfg.Banks(), cfg.BankWords
	din, dw, dout := int(l.InputWords()), int(l.WeightWords()), int(l.OutputWords())
	if din+dw+dout > banks*bankWords {
		return nil, fmt.Errorf("verify: layer needs %d words, buffer has %d", din+dw+dout, banks*bankWords)
	}

	buf, err := edram.New(banks, bankWords, retention.Typical(), seed)
	if err != nil {
		return nil, err
	}
	div, err := memctrl.NewDivider(cfg.FrequencyHz, interval)
	if err != nil {
		return nil, err
	}
	issuer, err := memctrl.NewIssuer(div, banks)
	if err != nil {
		return nil, err
	}
	// Refresh every bank the layer's [inputs | weights | outputs] layout
	// touches.
	used := (din + dw + dout + bankWords - 1) / bankWords
	flags := make([]bool, banks)
	for i := 0; i < used; i++ {
		flags[i] = true
	}
	if err := issuer.SetFlags(flags); err != nil {
		return nil, err
	}

	g := gen.New(seed)
	ins := g.Words(din)
	ws := g.Words(dw)
	res, err := sim.RunFunctional(l, fixed.Q88, ins, ws, buf,
		&sim.Refresher{Issuer: issuer, Target: buf}, cfg.PEs(), cfg.FrequencyHz)
	if err != nil {
		return nil, err
	}

	// Execution time: the functional clock advances one cycle per PEs()
	// in-bounds MACs.
	cycles := inBoundsMACs(l) / uint64(cfg.PEs())
	want := time.Duration(float64(cycles) / cfg.FrequencyHz * float64(time.Second))
	if !tol.closeDur(res.ExecTime, want) {
		r.diverge("functional/exec-time", "analytical", "functional", want, res.ExecTime)
	}

	// Refresh words: the issuer must have fired exactly the tick-model
	// prediction over the execution span.
	predicted := memctrl.Pulses(res.ExecTime, div.Period()) * uint64(used) * uint64(bankWords)
	if res.RefreshWords != predicted {
		r.diverge("functional/refresh-words", "tick", "functional", predicted, res.RefreshWords)
	}

	// Correctness: refreshed at the conventional rate, the buffered
	// execution must reproduce the perfect-memory reference exactly.
	if interval <= retention.TypicalRetentionTime && res.WordErrors != 0 {
		r.diverge("functional/word-errors", "reference", "functional", 0, res.WordErrors)
	}
	return r, nil
}
