// Package verify is the cross-model conformance harness for the RANA
// pipeline. The repository carries three independent derivations of the
// same loop semantics — the closed-form analytical model
// (pattern.Analyze) behind the Eq. 14 scheduler, the tile-granular cycle
// walker (sim.Walk), and the word-accurate functional simulator
// (sim.RunFunctional) — and every headline number (99.7% refresh removal,
// 66.2% energy saving) silently depends on their agreement.
//
// The package provides three layers of checking:
//
//   - a differential oracle (CompareLayer, CompareRefresh,
//     CompareFunctional) that runs two or more models on one
//     (layer, pattern, tiling, config) and reports any disagreement on
//     MAC counts, cycles, buffer traffic, data lifetimes, execution time
//     and refresh-word counts within declared tolerances;
//
//   - runtime invariant checkers: CheckPlan validates every structural
//     invariant of a schedule (bank allocations within the buffer,
//     refresh flags consistent with the guarded lifetimes, energy
//     counters non-negative and conserved across Plan.Totals), and plugs
//     into sched.Schedule via Options.Check; RunObserver plugs into
//     exec.Engine and enforces a monotonic model clock across chained
//     RunFunctionalAt calls;
//
//   - a shrinking minimizer (Minimize) that reduces a diverging case to
//     a small repro, used by cmd/rana-verify's reports.
//
// Tolerances are deliberately tight: cycle counts, traffic words and
// refresh words must agree exactly; durations may differ by the
// nanosecond rounding of the cycles→time conversion (DefaultTolerances).
package verify

import (
	"fmt"
	"strings"
	"time"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
)

// Tolerances declares how much disagreement the oracle accepts.
type Tolerances struct {
	// Duration is the absolute slack for wall-time comparisons: the
	// cycles→time conversion rounds to whole nanoseconds independently in
	// each model, so durations built from equal cycle counts may differ
	// by up to one nanosecond per conversion.
	Duration time.Duration
	// RelEnergy is the relative slack for energy conservation checks;
	// summing per-layer breakdowns and pricing summed counts differ only
	// by floating-point association.
	RelEnergy float64
}

// DefaultTolerances are the tolerances cmd/rana-verify and the tests run
// with: 1 ns of duration slack, one part in 10⁹ of energy slack, and
// exact agreement everywhere else.
func DefaultTolerances() Tolerances {
	return Tolerances{Duration: time.Nanosecond, RelEnergy: 1e-9}
}

// closeDur reports whether two durations agree within the tolerance.
func (t Tolerances) closeDur(a, b time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= t.Duration
}

// closeEnergy reports whether two picojoule totals agree within the
// relative tolerance.
func (t Tolerances) closeEnergy(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m < 1 {
		m = 1
	}
	return d <= t.RelEnergy*m
}

// Divergence is one cross-model disagreement found by the oracle.
type Divergence struct {
	// Check names the quantity that disagreed, e.g. "cycles" or
	// "buffer-traffic/inputs".
	Check string
	// Models names the two sides, e.g. "analytical" vs "walker".
	Models [2]string
	// Want and Got are the two sides' values, rendered.
	Want, Got string
}

// String implements fmt.Stringer.
func (d Divergence) String() string {
	return fmt.Sprintf("%s: %s=%s, %s=%s", d.Check, d.Models[0], d.Want, d.Models[1], d.Got)
}

// Report collects a case's divergences.
type Report struct {
	Layer       models.ConvLayer
	Pattern     pattern.Kind
	Tiling      pattern.Tiling
	Config      hw.Config
	Divergences []Divergence
}

// OK reports whether the case passed.
func (r *Report) OK() bool { return len(r.Divergences) == 0 }

// String summarizes the report, one divergence per line.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("%s %v %v: ok", r.Layer.Name, r.Pattern, r.Tiling)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %v %v on %s: %d divergences\n",
		r.Layer.Name, r.Pattern, r.Tiling, r.Config.Name, len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return strings.TrimRight(b.String(), "\n")
}

// diverge appends a divergence between two rendered values.
func (r *Report) diverge(check, wantModel, gotModel string, want, got any) {
	r.Divergences = append(r.Divergences, Divergence{
		Check:  check,
		Models: [2]string{wantModel, gotModel},
		Want:   fmt.Sprint(want),
		Got:    fmt.Sprint(got),
	})
}

// Violation is one broken runtime invariant.
type Violation struct {
	// Layer names the offending layer; empty for plan-level violations.
	Layer string
	// Invariant names the broken property, e.g. "alloc-within-banks".
	Invariant string
	// Detail explains the violation with the observed values.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Layer == "" {
		return fmt.Sprintf("%s: %s", v.Invariant, v.Detail)
	}
	return fmt.Sprintf("%s: %s: %s", v.Layer, v.Invariant, v.Detail)
}

// violations renders a list as one error, or nil if empty.
func violationsErr(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return fmt.Errorf("verify: %d invariant violations: %s", len(vs), strings.Join(parts, "; "))
}
