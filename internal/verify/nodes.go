package verify

// The cross-node conformance oracle. PR 6 turns ranad into a fleet: a
// consistent-hash ring shards the key space, a persistent plan store
// warm-restarts nodes, and forwarded requests are served by the key's
// owner. None of that is allowed to move a single plan byte — the
// headline fleet claim is that any replica, warm or cold, local or
// forwarding, answers a request byte-identically to a lone single-node
// ranad. CompareNodes is that check: it posts one request body to a
// reference ranad and to every fleet node, and reports any node whose
// status or body diverges from the reference's.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"rana/internal/serve"
)

// NodesReport collects one request's divergences across a node set.
type NodesReport struct {
	// Path and Body identify the request that was replayed, e.g.
	// "/v1/schedule" with `{"model": "AlexNet"}`.
	Path string
	Body string
	// Reference is the single-node URL every node was compared against.
	Reference string
	// Nodes are the fleet URLs that were compared.
	Nodes       []string
	Divergences []Divergence
}

// OK reports whether every node reproduced the reference response.
func (r *NodesReport) OK() bool { return len(r.Divergences) == 0 }

// String summarizes the report, one divergence per line.
func (r *NodesReport) String() string {
	if r.OK() {
		return fmt.Sprintf("%s %s: %d nodes byte-identical to the reference",
			r.Path, r.Body, len(r.Nodes))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s: %d node divergences\n", r.Path, r.Body, len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return strings.TrimRight(b.String(), "\n")
}

// diverge appends a divergence between the reference and one node.
func (r *NodesReport) diverge(check, node string, want, got any) {
	r.Divergences = append(r.Divergences, Divergence{
		Check:  check,
		Models: [2]string{"reference", node},
		Want:   fmt.Sprint(want),
		Got:    fmt.Sprint(got),
	})
}

// defaultNodesClient keeps one conformance sweep from stalling for the
// full 30 s client budget on a dead node.
func defaultNodesClient() *serve.RetryClient {
	return &serve.RetryClient{
		MaxAttempts: 3,
		BaseBackoff: 50 * time.Millisecond,
		Budget:      10 * time.Second,
	}
}

// CompareNodes posts path+body to the reference ranad and then to every
// node URL, and reports any node whose HTTP status or response bytes
// differ from the reference's. Plans are a pure function of the
// canonical request key, so a healthy fleet — whatever node owns the
// key, wherever the request lands, warm or cold — must reproduce the
// reference bytes exactly; a 200 with different bytes and a non-200
// where the reference succeeded are both divergences, not transport
// errors.
//
// client may be nil, selecting a short-budget RetryClient. An error is
// returned only when the reference itself is unreachable — without its
// answer there is nothing to conform to.
func CompareNodes(ctx context.Context, client *serve.RetryClient, reference string, nodes []string, path string, body []byte) (*NodesReport, error) {
	if client == nil {
		client = defaultNodesClient()
	}
	r := &NodesReport{Path: path, Body: string(body), Reference: reference, Nodes: nodes}

	refBody, refStatus, err := client.PostJSON(ctx, reference+path, body)
	if err != nil {
		return nil, fmt.Errorf("verify: reference %s%s: %w", reference, path, err)
	}

	for _, node := range nodes {
		got, status, err := client.PostJSON(ctx, node+path, body)
		if err != nil {
			r.diverge("nodes/transport", node, fmt.Sprintf("status %d", refStatus), err)
			continue
		}
		if status != refStatus {
			r.diverge("nodes/status", node,
				fmt.Sprintf("%d: %.120s", refStatus, refBody),
				fmt.Sprintf("%d: %.120s", status, got))
			continue
		}
		if string(got) != string(refBody) {
			r.diverge("nodes/body-bytes", node,
				fmt.Sprintf("%.120s", refBody), fmt.Sprintf("%.120s", got))
		}
	}
	return r, nil
}
