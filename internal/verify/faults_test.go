package verify

import (
	"errors"
	"strings"
	"testing"

	"rana/internal/fault"
	"rana/internal/fixed"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/retention"
	"rana/internal/sched"
	"rana/internal/training"
)

// testOracle pretrains the demo model once for the whole test binary —
// the same economy the CLI applies across the zoo.
var testOracle = NewFaultOracle(training.Config{
	Epochs: 3, LR: 0.02, Momentum: 0.9, Format: fixed.Q88, Seed: 1,
}, 160)

func faultOpts() sched.Options {
	return sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: retention.TolerableRetentionTime,
		Controller:      memctrl.RefreshOptimized{},
	}
}

func TestCompareFaultsAlexNet(t *testing.T) {
	r, err := CompareFaults(models.AlexNet(), hw.TestAcceleratorEDRAM(), faultOpts(), testOracle, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("fault differential diverged:\n%s", r)
	}
	swept := strings.Join(r.Swept, " ")
	// The admissible approximate points must have been exercised and the
	// over-budget corner rejected.
	for _, want := range []string{"approx-dram@v0.9", "approx-dram@v0.8", "approx-dram@v0.7!"} {
		if !strings.Contains(swept, want) {
			t.Errorf("sweep %q missing %s", swept, want)
		}
	}
}

func TestCompareFaultsDeterministic(t *testing.T) {
	net := models.GoogLeNet()
	cfg := hw.TestAcceleratorEDRAM()
	a, err := CompareFaults(net, cfg, faultOpts(), testOracle, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompareFaults(net, cfg, faultOpts(), testOracle, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same-seed reports differ:\n%s\nvs\n%s", a, b)
	}
	if !a.OK() {
		t.Errorf("fault differential diverged:\n%s", a)
	}
}

func TestCompareFaultsRejectsBadConstraint(t *testing.T) {
	_, err := CompareFaults(models.AlexNet(), hw.TestAcceleratorEDRAM(), faultOpts(), nil, 2, 1)
	if err == nil {
		t.Fatal("constraint 2 accepted")
	}
	var lerr *training.LadderError
	if !errors.As(err, &lerr) {
		t.Errorf("error %v is not a *training.LadderError", err)
	}
}

func TestFaultOracleProbes(t *testing.T) {
	if base := testOracle.Baseline(); base <= 0.5 {
		t.Fatalf("oracle baseline %g too weak to discriminate", base)
	}
	rel, det := testOracle.Relative(0)
	if rel != 1 || !det {
		t.Errorf("clean probe = (%g, %v), want (1, true)", rel, det)
	}
	// An admitted rate barely perturbs the pretrained model; a huge rate
	// must visibly degrade it — the oracle can tell the two apart.
	relLow, det := testOracle.Relative(1e-5)
	if !det {
		t.Error("low-rate probe not deterministic")
	}
	if relLow < DefaultOracleConstraint {
		t.Errorf("admitted rate 1e-5 degraded the oracle to %g", relLow)
	}
	relHigh, _ := testOracle.Relative(0.25)
	if relHigh >= relLow {
		t.Errorf("rate 0.25 (rel %g) not worse than 1e-5 (rel %g)", relHigh, relLow)
	}
	// Cached probes come back identical.
	again, _ := testOracle.Relative(1e-5)
	if again != relLow {
		t.Errorf("cache returned %g, want %g", again, relLow)
	}
}

func TestCompareFaultFunctional(t *testing.T) {
	l := models.ConvLayer{Name: "spot", N: 2, H: 8, L: 8, M: 2, K: 3, S: 1, P: 1}
	cfg := hw.TestAcceleratorEDRAM()
	const rate, seed = 0.1, 5
	// The checks must not be vacuous: the same derivation the oracle
	// performs has to actually place flips in the output region.
	m, err := fault.New(int(l.OutputWords()), rate, fault.MixSeed(seed, "sram/"+l.Name))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.XorWords()) == 0 {
		t.Fatal("test premise broken: empty mask")
	}
	// Non-refreshing (SRAM) and refreshing (approximate eDRAM) paths.
	for _, spec := range []string{"sram", "edram", "approx-dram@v0.9"} {
		r, err := CompareFaultFunctional(spec, l, cfg, rate, seed)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !r.OK() {
			t.Errorf("%s:\n%s", spec, r)
		}
	}
	// Rate 0: no flips, no errors — the overlay is inert.
	r, err := CompareFaultFunctional("sram", l, cfg, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Errorf("inert overlay diverged:\n%s", r)
	}
	if _, err := CompareFaultFunctional("ddr3", l, cfg, rate, seed); err == nil {
		t.Error("off-chip backend accepted as a buffer")
	}
}
