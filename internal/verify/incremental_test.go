package verify

import (
	"testing"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/verify/gen"
)

// TestCompareIncrementalOnZoo is the incremental-pricing acceptance
// check: across the benchmark zoo, pruned and beam schedules with
// incremental bound pricing enabled must reproduce the stateless-bound
// reference byte-for-byte, sequentially and in parallel, with identical
// per-layer work accounting.
func TestCompareIncrementalOnZoo(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	for _, net := range models.Benchmarks() {
		t.Run(net.Name, func(t *testing.T) {
			r, err := CompareIncremental(net, cfg, zooOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !r.OK() {
				t.Error(r)
			}
			t.Logf("%s", r)
		})
	}
}

// TestCompareIncrementalWithAxes re-runs the oracle with the operating
// point, traversal and mapping axes open, where the pricing context's
// per-cell branch (blocked-ID DDR, per-map tables) actually exercises.
func TestCompareIncrementalWithAxes(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	opts := zooOptions()
	opts.Traversal = "rtc"
	opts.Mapping = "all"
	net := models.AlexNet()
	r, err := CompareIncremental(net, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Error(r)
	}
}

// TestCompareIncrementalOnGeneratedNetworks exercises the error-agreement
// arm: unschedulable random layers must be rejected identically with
// incremental pricing on and off.
func TestCompareIncrementalOnGeneratedNetworks(t *testing.T) {
	g := gen.New(11)
	const nets = 10
	for i := 0; i < nets; i++ {
		cfg := g.Config()
		net := models.Network{Name: "gen"}
		for j := 0; j < 1+i%3; j++ {
			net.Layers = append(net.Layers, g.TinyLayer())
		}
		r, err := CompareIncremental(net, cfg, zooOptions())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !r.OK() {
			t.Errorf("case %d on %s:\n%s", i, cfg.Name, r)
		}
	}
}

// TestIncrementalReportRendering sanity-checks the report machinery.
func TestIncrementalReportRendering(t *testing.T) {
	r := &IncrementalReport{Network: "x", Layers: 3}
	if !r.OK() {
		t.Fatal("empty report not OK")
	}
	r.diverge("incremental/plan-bytes/pruned/p1", "a", "b")
	if r.OK() {
		t.Fatal("report with a divergence claims OK")
	}
	if s := r.String(); s == "" {
		t.Fatal("empty rendering")
	}
}
