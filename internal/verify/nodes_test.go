package verify

// The acceptance check for the fleet layer: a 3-shard ranad ring must
// answer every zoo schedule and compile request byte-identically to a
// lone single-node ranad, whichever node takes the request. The
// negative cases prove the oracle actually bites: wrong bytes, wrong
// status and a dead node must each surface as a divergence.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rana/internal/models"
	"rana/internal/serve"
	"rana/internal/serve/shard"
)

// startNode serves cfg on a fresh listener and returns its base URL.
func startNode(t *testing.T, cfg serve.Config) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(cfg)
	go s.Serve(ln)
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return "http://" + ln.Addr().String()
}

// startRing brings up a 3-node sharded fleet and returns the node URLs.
func startRing(t *testing.T) []string {
	t.Helper()
	ids := []string{"n0", "n1", "n2"}
	lns := make([]net.Listener, len(ids))
	ringNodes := make([]shard.Node, len(ids))
	for i := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		ringNodes[i] = shard.Node{ID: ids[i], URL: "http://" + ln.Addr().String()}
	}
	urls := make([]string, len(ids))
	for i := range ids {
		ring, err := shard.New(ringNodes, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := serve.New(serve.Config{Ring: ring, ShardID: ids[i]})
		go s.Serve(lns[i])
		t.Cleanup(func() { s.Shutdown(context.Background()) })
		urls[i] = ringNodes[i].URL
	}
	return urls
}

// TestCompareNodesZooAcrossRing is the fleet acceptance criterion:
// byte-identical plans across 3 shards vs. a single-node ranad for
// every zoo network, on both the schedule and the compile endpoint.
func TestCompareNodesZooAcrossRing(t *testing.T) {
	reference := startNode(t, serve.Config{})
	nodes := startRing(t)
	ctx := context.Background()

	for _, m := range models.Benchmarks() {
		body := []byte(fmt.Sprintf(`{"model": %q}`, m.Name))
		for _, path := range []string{"/v1/schedule", "/v1/compile"} {
			r, err := CompareNodes(ctx, nil, reference, nodes, path, body)
			if err != nil {
				t.Fatalf("%s %s: %v", path, m.Name, err)
			}
			if !r.OK() {
				t.Errorf("%s", r)
			}
			if len(r.Nodes) != len(nodes) {
				t.Errorf("%s %s: compared %d nodes, want %d", path, m.Name, len(r.Nodes), len(nodes))
			}
		}
	}
}

// TestCompareNodesDetectsDivergence proves the oracle is live: nodes
// that answer with wrong bytes, a wrong status, or not at all must each
// produce exactly one divergence of the matching kind.
func TestCompareNodesDetectsDivergence(t *testing.T) {
	reference := startNode(t, serve.Config{})

	wrongBytes := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"plan": "not-the-reference-plan"}`)
	}))
	defer wrongBytes.Close()
	wrongStatus := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer wrongStatus.Close()
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + deadLn.Addr().String()
	deadLn.Close()

	client := &serve.RetryClient{MaxAttempts: 1, Budget: 2 * time.Second}
	r, err := CompareNodes(context.Background(), client, reference,
		[]string{wrongBytes.URL, wrongStatus.URL, dead},
		"/v1/schedule", []byte(`{"model": "AlexNet"}`))
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() {
		t.Fatal("oracle reported OK against three broken nodes")
	}
	byCheck := map[string]int{}
	for _, d := range r.Divergences {
		byCheck[d.Check]++
	}
	for _, check := range []string{"nodes/body-bytes", "nodes/status", "nodes/transport"} {
		if byCheck[check] != 1 {
			t.Errorf("%s divergences = %d, want 1 (all: %v)", check, byCheck[check], byCheck)
		}
	}
}

// TestCompareNodesReferenceUnreachable: without a reference answer there
// is nothing to conform to — the oracle must error, not report OK.
func TestCompareNodesReferenceUnreachable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadRef := "http://" + ln.Addr().String()
	ln.Close()
	client := &serve.RetryClient{MaxAttempts: 1, Budget: 2 * time.Second}
	if _, err := CompareNodes(context.Background(), client, deadRef, nil,
		"/v1/schedule", []byte(`{"model": "AlexNet"}`)); err == nil {
		t.Fatal("want an error for an unreachable reference")
	}
}
