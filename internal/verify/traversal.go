package verify

// The traversal/mapping-axis differential oracle. The Fig. 13
// exploration now searches two more axes — tile traversal order (RTC)
// and bank/row data mapping (PENDRAM) — and this oracle checks the three
// properties that make them safe to enable:
//
//   - leaving the axes at their defaults is exactly the legacy
//     computation: explicit default spellings ("linear", "row-major")
//     produce byte-identical wire plans to empty specs;
//   - the branch-and-bound stays sound across the enlarged space: the
//     pruned run reproduces the exhaustive plan byte-for-byte, and the
//     beam never reports less energy than the exact optimum (the
//     enlarged space itself can only improve on the default-only one);
//   - every *admitted* reorder meets its retention deadlines in the
//     cycle walker: for each layer the empirical per-region lifetimes of
//     sim.WalkTraversal must not exceed the analytical lifetimes the
//     refresh decisions were derived from, and any region the plan
//     leaves unrefreshed must empirically retire before the guarded
//     retention interval.

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"rana/internal/hw"
	"rana/internal/mem"
	"rana/internal/models"
	"rana/internal/sched"
	"rana/internal/sched/search"
	"rana/internal/sim"
)

// TraversalReport collects one network's traversal-axis divergences.
type TraversalReport struct {
	Network string
	// Reordered counts layers whose winning plan left the default cell
	// (non-linear traversal or non-row-major mapping) — the axis doing
	// observable work. Zero is legal: on some (network, config) pairs the
	// defaults win everywhere.
	Reordered int
	// SavedPJ is the whole-network energy the enlarged space saved over
	// the default-only exhaustive optimum (>= 0 when the oracle passes).
	SavedPJ     float64
	Divergences []Divergence
}

// OK reports whether every traversal-axis property held.
func (r *TraversalReport) OK() bool { return len(r.Divergences) == 0 }

// String summarizes the report, one divergence per line.
func (r *TraversalReport) String() string {
	if r.OK() {
		return fmt.Sprintf("%s: traversal axes sound (%d layers reordered, %.4g pJ saved)",
			r.Network, r.Reordered, r.SavedPJ)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d traversal divergences\n", r.Network, len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return strings.TrimRight(b.String(), "\n")
}

func (r *TraversalReport) diverge(check, wantModel, gotModel string, want, got any) {
	r.Divergences = append(r.Divergences, Divergence{
		Check:  check,
		Models: [2]string{wantModel, gotModel},
		Want:   fmt.Sprint(want),
		Got:    fmt.Sprint(got),
	})
}

// CompareTraversal runs the traversal/mapping-axis oracle on one
// network. opts carries the shared scheduling frame (patterns, refresh
// interval, controller); its Traversal and Mapping fields select which
// axis values to sweep — empty selects the full built-in sweep ("rtc"
// traversals, "all" mappings).
func CompareTraversal(net models.Network, cfg hw.Config, opts sched.Options, tol Tolerances) (*TraversalReport, error) {
	r := &TraversalReport{Network: net.Name}

	with := func(s search.Strategy, traversal, mapping string) sched.Options {
		o := opts
		o.Search = s
		o.Traversal = traversal
		o.Mapping = mapping
		return o
	}
	encode := func(p *sched.Plan) (string, error) {
		b, err := json.Marshal(sched.Encode(p))
		if err != nil {
			return "", fmt.Errorf("verify: encoding plan: %w", err)
		}
		return string(b), nil
	}

	// Property 1: explicit default spellings are the legacy computation,
	// byte for byte.
	basePlan, err := sched.Schedule(net, cfg, with(search.Exhaustive, "", ""))
	if err != nil {
		return nil, fmt.Errorf("verify: default-axis schedule: %w", err)
	}
	spelled, err := sched.Schedule(net, cfg, with(search.Exhaustive, "linear", "row-major"))
	if err != nil {
		return nil, fmt.Errorf("verify: spelled-default schedule: %w", err)
	}
	baseJSON, err := encode(basePlan)
	if err != nil {
		return nil, err
	}
	spelledJSON, err := encode(spelled)
	if err != nil {
		return nil, err
	}
	if baseJSON != spelledJSON {
		r.diverge("traversal/default-bytes", "empty-spec", "spelled-default",
			fmt.Sprintf("%.120s", baseJSON), fmt.Sprintf("%.120s", spelledJSON))
	}

	// The sweep the remaining properties run under.
	traversal, mapping := opts.Traversal, opts.Mapping
	if traversal == "" {
		traversal = "rtc"
	}
	if mapping == "" {
		mapping = "all"
	}

	// Property 2: the branch-and-bound stays sound on the enlarged
	// space — pruned ≡ exhaustive bytes, beam never wins, and the
	// enlarged exhaustive optimum never loses to the default-only one
	// (the default cell is still in the space).
	exPlan, exErr := sched.Schedule(net, cfg, with(search.Exhaustive, traversal, mapping))
	prPlan, prErr := sched.Schedule(net, cfg, with(search.Pruned, traversal, mapping))
	if (exErr == nil) != (prErr == nil) {
		r.diverge("traversal/error", "exhaustive", "pruned", errString(exErr), errString(prErr))
		return r, nil
	}
	if exErr != nil {
		if exErr.Error() != prErr.Error() {
			r.diverge("traversal/error-text", "exhaustive", "pruned", exErr, prErr)
		}
		return r, nil
	}
	exJSON, err := encode(exPlan)
	if err != nil {
		return nil, err
	}
	prJSON, err := encode(prPlan)
	if err != nil {
		return nil, err
	}
	if exJSON != prJSON {
		r.diverge("traversal/plan-bytes", "exhaustive", "pruned",
			fmt.Sprintf("%.120s", exJSON), fmt.Sprintf("%.120s", prJSON))
	}
	if exPlan.Energy.Total() > basePlan.Energy.Total() {
		r.diverge("traversal/never-worse", "default-only", "axes-enabled",
			fmt.Sprintf("<= %g pJ", basePlan.Energy.Total()), exPlan.Energy.Total())
	}
	r.SavedPJ = basePlan.Energy.Total() - exPlan.Energy.Total()
	beamPlan, beamErr := sched.Schedule(net, cfg, with(search.Beam, traversal, mapping))
	if beamErr != nil {
		r.diverge("traversal/beam-error", "exhaustive", "beam", "ok", beamErr)
	} else if beamPlan.Energy.Total() < exPlan.Energy.Total() {
		r.diverge("traversal/beam-energy", "exhaustive", "beam",
			fmt.Sprintf(">= %g pJ", exPlan.Energy.Total()), beamPlan.Energy.Total())
	}

	// Property 3: every admitted reorder meets its retention deadlines in
	// the cycle walker. The analytical lifetimes decided the refresh
	// flags; the walker's empirical maxima must confirm them.
	bk, _, err := sched.ResolveBackend(cfg, opts)
	if err != nil {
		return nil, fmt.Errorf("verify: resolving backend: %w", err)
	}
	refreshing := opts.Controller != nil && bk.Refreshes()
	for i, lp := range exPlan.Layers {
		l := net.Layers[i]
		a := lp.Analysis
		if lp.Traversal != "" || lp.Mapping != "" {
			r.Reordered++
		}
		tr := sim.WalkTraversal(l, a.Pattern, a.Tiling, cfg, a.Traversal)
		for _, c := range []struct {
			name       string
			analytical time.Duration
			empirical  time.Duration
			need       bool
		}{
			{"inputs", a.Lifetimes.Input, tr.Lifetimes.Input, lp.Needs.Inputs},
			{"outputs", a.Lifetimes.Output, tr.Lifetimes.Output, lp.Needs.Outputs},
			{"weights", a.Lifetimes.Weight, tr.Lifetimes.Weight, lp.Needs.Weights},
		} {
			if c.empirical > c.analytical+tol.Duration {
				r.diverge("traversal/lifetime/"+l.Name+"/"+c.name, "analysis", "walker",
					c.analytical, c.empirical)
			}
			if !refreshing {
				continue
			}
			pt, ok := mem.PointByName(bk, lp.Point)
			if !ok {
				r.diverge("traversal/point/"+l.Name, "backend", "plan", bk.Name(), lp.Point)
				continue
			}
			interval := opts.RefreshInterval
			if pt.RetentionScale != 1 {
				interval = time.Duration(float64(interval) * pt.RetentionScale)
			}
			guarded := time.Duration(float64(interval) * opts.Guard())
			if !c.need && c.empirical >= guarded {
				r.diverge("traversal/deadline/"+l.Name+"/"+c.name, "guarded interval", "walker lifetime",
					fmt.Sprintf("< %v", guarded), c.empirical)
			}
		}
	}
	return r, nil
}
