package verify

import (
	"fmt"
	"time"

	"rana/internal/energy"
	"rana/internal/exec"
	"rana/internal/mem"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/sched"
)

// CheckPlan validates every structural invariant of a compiled schedule:
//
//   - every layer's chosen candidate is feasible and its tiling satisfies
//     the core local-storage constraints;
//   - bank allocations are non-negative and fit within cfg.Banks(); the
//     expanded per-bank refresh flags agree with the controller's
//     per-pulse arithmetic (the allocation ranges are disjoint by
//     construction — the flag expansion walks them in order);
//   - refresh flags are cleared exactly when the datum's lifetime clears
//     the guarded interval (RetentionGuard × RefreshInterval), and the
//     layer's refresh-word count re-derives from the controller;
//   - operation counts match the layer's analysis and the energy
//     breakdown re-prices from them, with all components non-negative;
//   - no data lifetime outlives the layer's execution window;
//   - plan totals conserve the per-layer counts, energy and exec time.
//
// It returns every violation found; an empty slice means the plan is
// internally consistent.
func CheckPlan(p *sched.Plan, tol Tolerances) []Violation {
	var vs []Violation
	add := func(layer, invariant, format string, args ...any) {
		vs = append(vs, Violation{Layer: layer, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}
	if p == nil {
		return []Violation{{Invariant: "plan", Detail: "nil plan"}}
	}
	if len(p.Layers) != len(p.Network.Layers) {
		add("", "plan", "%d layer plans for %d layers", len(p.Layers), len(p.Network.Layers))
		return vs
	}
	cfg := p.Config
	opts := p.Options
	banks, bankWords := cfg.Banks(), cfg.BankWords
	bk, _, err := sched.ResolveBackend(cfg, opts)
	if err != nil {
		add("", "backend", "plan options name an unresolvable backend: %v", err)
		return vs
	}
	refreshing := opts.Controller != nil && bk.Refreshes()

	var totals energy.Counts
	var totalEnergy energy.Breakdown
	var totalExec time.Duration
	for i := range p.Layers {
		lp := p.Layers[i]
		l := p.Network.Layers[i]
		a := lp.Analysis

		if !a.Feasible {
			add(l.Name, "scheduled-infeasible", "chosen candidate %v %v is infeasible", a.Pattern, a.Tiling)
		}
		if opts.FixedTiling == nil && !a.Tiling.FitsCore(effectiveLayer(l), cfg) {
			add(l.Name, "tiling-fits-core", "tiling %v exceeds core local storage", a.Tiling)
		}

		// Bank allocation.
		if lp.Alloc.InputBanks < 0 || lp.Alloc.OutputBanks < 0 || lp.Alloc.WeightBanks < 0 {
			add(l.Name, "alloc-nonnegative", "allocation %+v", lp.Alloc)
		}
		if lp.Alloc.Total() > banks {
			add(l.Name, "alloc-within-banks", "allocation %+v exceeds %d banks", lp.Alloc, banks)
		}

		// The layer's operating point: the empty spelling is the nominal
		// corner (the wire encoding normalizes it away).
		pt, ok := mem.PointByName(bk, lp.Point)
		if !ok {
			add(l.Name, "operating-point", "plan names unknown point %q on backend %q", lp.Point, bk.Name())
			continue
		}

		// Refresh flags vs guarded lifetimes, and the γ re-derivation.
		// Reduced-voltage points shrink the retention curve, and the
		// scheduler shrinks the refresh interval with it.
		if refreshing {
			interval := opts.RefreshInterval
			if pt.RetentionScale != 1 {
				interval = time.Duration(float64(interval) * pt.RetentionScale)
			}
			guarded := time.Duration(float64(interval) * opts.Guard())
			for _, c := range []struct {
				name string
				life time.Duration
				need bool
			}{
				{"inputs", a.Lifetimes.Input, lp.Needs.Inputs},
				{"outputs", a.Lifetimes.Output, lp.Needs.Outputs},
				{"weights", a.Lifetimes.Weight, lp.Needs.Weights},
			} {
				if want := c.life >= guarded; c.need != want {
					add(l.Name, "refresh-flag/"+c.name,
						"need=%v but lifetime %v vs guarded interval %v", c.need, c.life, guarded)
				}
			}
			flags := lp.RefreshFlags(banks)
			flagged := 0
			for _, f := range flags {
				if f {
					flagged++
				}
			}
			if _, optimized := opts.Controller.(memctrl.RefreshOptimized); optimized && lp.Alloc.Total() <= banks {
				perPulse := opts.Controller.WordsPerPulse(lp.Alloc, lp.Needs, banks, bankWords)
				if uint64(flagged)*uint64(bankWords) != perPulse {
					add(l.Name, "flags-match-controller", "%d flagged banks × %d words != per-pulse %d",
						flagged, bankWords, perPulse)
				}
			}
			want := memctrl.RefreshWords(opts.Controller, a.ExecTime, interval,
				lp.Alloc, lp.Needs, banks, bankWords)
			if lp.Counts.Refreshes != want {
				add(l.Name, "refresh-count", "counted %d, re-derived %d", lp.Counts.Refreshes, want)
			}
		} else if lp.Counts.Refreshes != 0 || lp.Needs.Any() {
			add(l.Name, "refresh-without-controller", "refreshes=%d needs=%+v", lp.Counts.Refreshes, lp.Needs)
		}

		// Counts must match the analysis and the layer's own arithmetic.
		if lp.Counts.MACs != l.MACs() {
			add(l.Name, "counts-macs", "counted %d, layer has %d", lp.Counts.MACs, l.MACs())
		}
		if lp.Counts.BufferAccesses != a.BufferTraffic.Total() {
			add(l.Name, "counts-buffer", "counted %d, analysis %d", lp.Counts.BufferAccesses, a.BufferTraffic.Total())
		}
		if lp.Counts.DDRAccesses != a.DDRTraffic.Total() {
			add(l.Name, "counts-ddr", "counted %d, analysis %d", lp.Counts.DDRAccesses, a.DDRTraffic.Total())
		}
		if lp.Counts.BufferWrites != a.BufferWrites {
			add(l.Name, "counts-buffer-writes", "counted %d, analysis %d", lp.Counts.BufferWrites, a.BufferWrites)
		}

		// The layer's data mapping: the empty spelling is the row-major
		// identity (normalized away on the wire), anything else must name
		// a registered policy — its scales enter the re-price below.
		mp, ok := sched.MappingByName(lp.Mapping)
		if !ok {
			add(l.Name, "mapping-policy", "plan names unknown mapping %q", lp.Mapping)
			continue
		}
		// The plan's traversal spelling must agree with the analysis it
		// carries: the analysis is what the lifetimes (and therefore the
		// refresh decisions above) were derived from.
		wantTrav := ""
		if !a.Traversal.IsLinear() {
			wantTrav = a.Traversal.String()
		}
		if lp.Traversal != wantTrav {
			add(l.Name, "traversal-consistent", "plan says %q, analysis ran %q", lp.Traversal, a.Traversal)
		}

		// Energy re-prices from the counts — against the operating point's
		// own table under the layer's mapping policy — with non-negative
		// components.
		priced := energy.SystemTable(lp.Counts, mp.Apply(pt.Table()))
		if lp.Energy != priced {
			add(l.Name, "energy-reprice", "stored %+v, re-priced %+v", lp.Energy, priced)
		}
		if lp.Energy.Computing < 0 || lp.Energy.BufferAccess < 0 || lp.Energy.Refresh < 0 || lp.Energy.OffChip < 0 || lp.Energy.Wear < 0 {
			add(l.Name, "energy-nonnegative", "%+v", lp.Energy)
		}

		// No lifetime outlives the execution window.
		if m := a.Lifetimes.Max(); m > a.ExecTime+tol.Duration {
			add(l.Name, "lifetime-exceeds-exec", "max lifetime %v > exec %v", m, a.ExecTime)
		}

		totals.Add(lp.Counts)
		totalEnergy.Add(lp.Energy)
		totalExec += a.ExecTime
	}

	// Conservation across Plan.Totals.
	if totals != p.Totals {
		add("", "totals-conserved", "sum %+v, plan %+v", totals, p.Totals)
	}
	if !tol.closeEnergy(totalEnergy.Total(), p.Energy.Total()) {
		add("", "energy-conserved", "sum %.6g pJ, plan %.6g pJ", totalEnergy.Total(), p.Energy.Total())
	}
	if totalExec != p.ExecTime {
		add("", "exec-time-conserved", "sum %v, plan %v", totalExec, p.ExecTime)
	}
	return vs
}

// effectiveLayer mirrors the scheduler's grouped-convolution view: the
// core constraints see one group's sub-problem.
func effectiveLayer(l models.ConvLayer) models.ConvLayer {
	if l.Groups <= 1 {
		return l
	}
	l.N /= l.Groups
	l.M /= l.Groups
	l.Groups = 1
	return l
}

// PlanChecker returns a sched.Options.Check hook that fails scheduling
// when any plan invariant is violated.
func PlanChecker(tol Tolerances) func(*sched.Plan) error {
	return func(p *sched.Plan) error {
		return violationsErr(CheckPlan(p, tol))
	}
}

// RunObserver is an exec.Observer enforcing the engine's runtime
// invariants: layers execute in order, the model clock is monotonic and
// gap-free across chained RunFunctionalAt calls, and the refresh counter
// never decreases. Construct with NewRunObserver.
type RunObserver struct {
	tol         Tolerances
	nextIndex   int
	clock       time.Duration
	refreshWord uint64
}

var _ exec.Observer = (*RunObserver)(nil)

// NewRunObserver returns an observer with the default tolerances.
func NewRunObserver() *RunObserver {
	return &RunObserver{tol: DefaultTolerances()}
}

// LayerExecuted implements exec.Observer.
func (o *RunObserver) LayerExecuted(index int, layer models.ConvLayer, start, end time.Duration, refreshWords uint64) error {
	if index != o.nextIndex {
		return fmt.Errorf("layer %d (%s) executed out of order, expected %d", index, layer.Name, o.nextIndex)
	}
	if start != o.clock {
		return fmt.Errorf("layer %d (%s) starts at %v, model clock is at %v", index, layer.Name, start, o.clock)
	}
	if end < start {
		return fmt.Errorf("layer %d (%s) clock ran backwards: %v -> %v", index, layer.Name, start, end)
	}
	if refreshWords < o.refreshWord {
		return fmt.Errorf("layer %d (%s) refresh counter decreased: %d -> %d",
			index, layer.Name, o.refreshWord, refreshWords)
	}
	o.nextIndex = index + 1
	o.clock = end
	o.refreshWord = refreshWords
	return nil
}

// CheckReport validates a finished execution report: the measured counts
// must re-price to the reported energy and every component must be
// non-negative.
func CheckReport(r *exec.Report, tech energy.BufferTech, tol Tolerances) []Violation {
	var vs []Violation
	if r == nil {
		return []Violation{{Invariant: "report", Detail: "nil report"}}
	}
	priced := energy.System(r.Counts, tech)
	if !tol.closeEnergy(priced.Total(), r.Energy.Total()) {
		vs = append(vs, Violation{Invariant: "report-energy-reprice",
			Detail: fmt.Sprintf("counts price to %.6g pJ, report says %.6g pJ", priced.Total(), r.Energy.Total())})
	}
	if r.Energy.Computing < 0 || r.Energy.BufferAccess < 0 || r.Energy.Refresh < 0 || r.Energy.OffChip < 0 {
		vs = append(vs, Violation{Invariant: "report-energy-nonnegative",
			Detail: fmt.Sprintf("%+v", r.Energy)})
	}
	if r.ExecTime < 0 {
		vs = append(vs, Violation{Invariant: "report-exec-time", Detail: r.ExecTime.String()})
	}
	return vs
}
