package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIIIRelativeCosts(t *testing.T) {
	// Table III's "Relative Cost" column, within rounding.
	rel := func(x float64) float64 { return x / MACpJ }
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"SRAM access", rel(SRAMAccessPJ), 14.3},
		{"eDRAM access", rel(EDRAMAccessPJ), 8.3},
		{"eDRAM refresh", rel(EDRAMRefreshPJ), 37.7},
		{"DDR access", rel(DDRAccessPJ), 1653.7},
	}
	// 2.5% tolerance: Table III's own columns disagree slightly
	// (18.2 pJ / 1.3 pJ = 14.0, printed as 14.3x).
	for _, c := range cases {
		if math.Abs(c.got-c.want)/c.want > 0.025 {
			t.Errorf("%s relative cost = %.1f, want %.1f", c.name, c.got, c.want)
		}
	}
}

func TestBankRefreshEnergyMatchesTableII(t *testing.T) {
	// Table II: 0.788 µJ per 32 KB bank refresh = 16384 words × 48.1 pJ.
	gotUJ := float64(BankWords) * EDRAMRefreshPJ / 1e6
	if math.Abs(gotUJ-EDRAMBankRefreshUJ) > 0.001 {
		t.Errorf("bank refresh = %.4f µJ, want %.3f", gotUJ, EDRAMBankRefreshUJ)
	}
}

func TestEDRAMDensityAdvantage(t *testing.T) {
	// Table II: eDRAM area is 26.0% of SRAM.
	ratio := EDRAMBankAreaMM2 / SRAMBankAreaMM2
	if math.Abs(ratio-0.26) > 0.005 {
		t.Errorf("area ratio = %.3f, want 0.26", ratio)
	}
}

func TestSystemEquation14(t *testing.T) {
	c := Counts{MACs: 1000, BufferAccesses: 100, Refreshes: 10, DDRAccesses: 1}
	b := System(c, EDRAM)
	if b.Computing != 1000*MACpJ {
		t.Errorf("computing = %g", b.Computing)
	}
	if b.BufferAccess != 100*EDRAMAccessPJ {
		t.Errorf("buffer = %g", b.BufferAccess)
	}
	if b.Refresh != 10*EDRAMRefreshPJ {
		t.Errorf("refresh = %g", b.Refresh)
	}
	if b.OffChip != 1*DDRAccessPJ {
		t.Errorf("offchip = %g", b.OffChip)
	}
	want := 1000*MACpJ + 100*EDRAMAccessPJ + 10*EDRAMRefreshPJ + DDRAccessPJ
	if math.Abs(b.Total()-want) > 1e-9 {
		t.Errorf("total = %g, want %g", b.Total(), want)
	}
	// SRAM: cheaper nothing — pricier buffer, free refresh.
	s := System(c, SRAM)
	if s.Refresh != 0 {
		t.Error("SRAM must not pay refresh energy")
	}
	if s.BufferAccess != 100*SRAMAccessPJ {
		t.Errorf("SRAM buffer = %g", s.BufferAccess)
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	a := Breakdown{Computing: 1, BufferAccess: 2, Refresh: 3, OffChip: 4}
	b := a
	b.Add(a)
	if b.Total() != 20 {
		t.Errorf("Add total = %g", b.Total())
	}
	if s := a.Scale(2); s.Total() != 20 || s.Refresh != 6 {
		t.Errorf("Scale = %+v", s)
	}
	n := a.Normalize(a)
	if math.Abs(n.Total()-1) > 1e-12 {
		t.Errorf("Normalize total = %g", n.Total())
	}
	if a.AcceleratorEnergy() != 6 {
		t.Errorf("AcceleratorEnergy = %g, want 6 (excludes off-chip)", a.AcceleratorEnergy())
	}
}

func TestNormalizePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Breakdown{}.Normalize(Breakdown{})
}

func TestCountsAdd(t *testing.T) {
	a := Counts{MACs: 1, BufferAccesses: 2, Refreshes: 3, DDRAccesses: 4, BufferWrites: 5}
	a.Add(Counts{MACs: 10, BufferAccesses: 20, Refreshes: 30, DDRAccesses: 40, BufferWrites: 50})
	if a != (Counts{11, 22, 33, 44, 55}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestBufferTechAccessors(t *testing.T) {
	if SRAM.String() != "SRAM" || EDRAM.String() != "eDRAM" {
		t.Error("String mismatch")
	}
	if BufferTech(7).String() == "" {
		t.Error("unknown tech should stringify")
	}
	if SRAM.AccessPJ() != SRAMAccessPJ || EDRAM.AccessPJ() != EDRAMAccessPJ {
		t.Error("AccessPJ mismatch")
	}
	if SRAM.RefreshPJ() != 0 || EDRAM.RefreshPJ() != EDRAMRefreshPJ {
		t.Error("RefreshPJ mismatch")
	}
	if SRAM.BankAreaMM2() != SRAMBankAreaMM2 || EDRAM.BankAreaMM2() != EDRAMBankAreaMM2 {
		t.Error("BankAreaMM2 mismatch")
	}
}

func TestEqualAreaEDRAM(t *testing.T) {
	// 384 KB SRAM (12 banks, 2.172 mm²) trades for 46 eDRAM banks
	// (1.4375 MiB) at equal area — the paper rounds this to 1.454 MB.
	got := EqualAreaEDRAMBytes(384 * 1024)
	if got != 46*BankBytes {
		t.Errorf("equal-area eDRAM = %d bytes, want %d", got, 46*BankBytes)
	}
	paperMB := float64(got) / (1024 * 1000)
	if math.Abs(paperMB-1.454) > 0.05 {
		t.Errorf("equal-area eDRAM = %.3f paper-MB, want ≈1.454", paperMB)
	}
}

// TestSystemLinearity: Eq. 14 is linear in the counts.
func TestSystemLinearity(t *testing.T) {
	f := func(m, b, r, d uint32, k uint8) bool {
		c := Counts{uint64(m), uint64(b), uint64(r), uint64(d), uint64(m) / 2}
		kk := uint64(k%8) + 1
		scaled := Counts{c.MACs * kk, c.BufferAccesses * kk, c.Refreshes * kk, c.DDRAccesses * kk, c.BufferWrites * kk}
		lhs := System(scaled, EDRAM).Total()
		rhs := System(c, EDRAM).Scale(float64(kk)).Total()
		return math.Abs(lhs-rhs) <= 1e-6*math.Max(lhs, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
