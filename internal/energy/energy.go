// Package energy holds the technology constants of Tables II and III and
// the system energy model of Eq. 14:
//
//	Energy = α·Emac + βb·Ebuffer + γ·Erefresh + βd·Eddr
//
// where α is the MAC count, βb the on-chip buffer access count, γ the
// refresh operation count and βd the off-chip DDR3 access count, all in
// 16-bit-word units. The constants were produced by the paper's authors
// with Destiny and CACTI in the TSMC 65 nm node; here they are transcribed
// directly (DESIGN.md §2).
package energy

import "fmt"

// Energies are in picojoules per 16-bit operation (Table III).
const (
	// MACpJ is the energy of one 16-bit fixed-point MAC (1.0x baseline).
	MACpJ = 1.3
	// SRAMAccessPJ is one 16-bit access to a 32 KB SRAM bank (14.3x).
	SRAMAccessPJ = 18.2
	// EDRAMAccessPJ is one 16-bit access to a 32 KB eDRAM bank (8.3x).
	EDRAMAccessPJ = 10.6
	// EDRAMRefreshPJ is the refresh of one 16-bit word in a 32 KB eDRAM
	// bank (37.7x). A full 32 KB bank refresh is 16384 words ≈ 0.788 µJ,
	// matching Table II's per-bank refresh energy.
	EDRAMRefreshPJ = 48.1
	// DDRAccessPJ is one 16-bit access to 1 GB DDR3 (1653.7x).
	DDRAccessPJ = 2112.9
)

// Per-bank characteristics (Table II, 32 KB in 65 nm).
const (
	// BankBytes is the capacity of one buffer bank.
	BankBytes = 32 * 1024
	// BankWords is the bank capacity in 16-bit words.
	BankWords = BankBytes / 2
	// SRAMBankAreaMM2 and EDRAMBankAreaMM2 are the per-bank areas; eDRAM
	// is 26.0% of SRAM, which is how 384 KB of SRAM trades for 1.454 MB
	// of eDRAM at equal area (§III-A).
	SRAMBankAreaMM2  = 0.181
	EDRAMBankAreaMM2 = 0.047
	// SRAMLatencyNS and EDRAMLatencyNS are per-access latencies.
	SRAMLatencyNS  = 1.730
	EDRAMLatencyNS = 1.541
	// EDRAMBankRefreshUJ is the energy of refreshing one whole bank.
	EDRAMBankRefreshUJ = 0.788
)

// BufferTech selects the on-chip buffer technology of a design point.
type BufferTech int

const (
	// SRAM buffers never refresh but cost more area and access energy.
	SRAM BufferTech = iota
	// EDRAM buffers are denser and cheaper per access but require
	// periodic refresh within the retention time.
	EDRAM
)

// String implements fmt.Stringer.
func (t BufferTech) String() string {
	switch t {
	case SRAM:
		return "SRAM"
	case EDRAM:
		return "eDRAM"
	default:
		return fmt.Sprintf("BufferTech(%d)", int(t))
	}
}

// AccessPJ returns the per-16-bit-word buffer access energy for the
// technology.
func (t BufferTech) AccessPJ() float64 {
	if t == SRAM {
		return SRAMAccessPJ
	}
	return EDRAMAccessPJ
}

// RefreshPJ returns the per-16-bit-word refresh energy; SRAM needs none.
func (t BufferTech) RefreshPJ() float64 {
	if t == SRAM {
		return 0
	}
	return EDRAMRefreshPJ
}

// BankAreaMM2 returns the 32 KB bank area for the technology.
func (t BufferTech) BankAreaMM2() float64 {
	if t == SRAM {
		return SRAMBankAreaMM2
	}
	return EDRAMBankAreaMM2
}

// Counts are the operation counts of Eq. 14 for some unit of work
// (a layer or a whole network), in 16-bit-word operations.
type Counts struct {
	// MACs is α, the multiply-accumulate count.
	MACs uint64
	// BufferAccesses is βb, on-chip buffer reads+writes.
	BufferAccesses uint64
	// Refreshes is γ, word-refresh operations.
	Refreshes uint64
	// DDRAccesses is βd, off-chip reads+writes.
	DDRAccesses uint64
	// BufferWrites is the subset of BufferAccesses that write the
	// buffer cell array — DDR fills plus output stores. Only wear-prone
	// technologies (Table.WearPJ > 0) price it; the Eq. 14 terms above
	// are unaffected.
	BufferWrites uint64
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.MACs += other.MACs
	c.BufferAccesses += other.BufferAccesses
	c.Refreshes += other.Refreshes
	c.DDRAccesses += other.DDRAccesses
	c.BufferWrites += other.BufferWrites
}

// Breakdown is a system energy split by source, in picojoules, matching
// the stacked bars of Figs. 1 and 15–19. Wear extends Eq. 14 with the
// ageing cost wear-prone memory backends charge per buffer write; it is
// zero for the paper's SRAM/eDRAM technologies, and adding a zero Wear
// term leaves Total bit-identical (every component is non-negative).
type Breakdown struct {
	Computing    float64
	BufferAccess float64
	Refresh      float64
	OffChip      float64
	Wear         float64 `json:"Wear,omitempty"`
}

// Total returns the summed system energy in picojoules (Eq. 14, plus
// the wear term for backends that charge one).
func (b Breakdown) Total() float64 {
	return b.Computing + b.BufferAccess + b.Refresh + b.OffChip + b.Wear
}

// AcceleratorEnergy returns system energy excluding off-chip access, the
// quantity plotted in Fig. 16.
func (b Breakdown) AcceleratorEnergy() float64 {
	return b.Computing + b.BufferAccess + b.Refresh
}

// Add accumulates other into b.
func (b *Breakdown) Add(other Breakdown) {
	b.Computing += other.Computing
	b.BufferAccess += other.BufferAccess
	b.Refresh += other.Refresh
	b.OffChip += other.OffChip
	b.Wear += other.Wear
}

// Scale returns the breakdown with every component multiplied by k.
func (b Breakdown) Scale(k float64) Breakdown {
	return Breakdown{
		Computing:    b.Computing * k,
		BufferAccess: b.BufferAccess * k,
		Refresh:      b.Refresh * k,
		OffChip:      b.OffChip * k,
		Wear:         b.Wear * k,
	}
}

// Normalize returns b scaled so that reference's total equals 1. It
// panics if reference has zero total energy.
func (b Breakdown) Normalize(reference Breakdown) Breakdown {
	t := reference.Total()
	if t == 0 {
		panic("energy: normalizing against zero total")
	}
	return b.Scale(1 / t)
}

// Table is the per-16-bit-word energy table of one memory-backend
// operating point — the generalization of the BufferTech constants that
// lets non-paper technologies (reduced-voltage approximate DRAM, wear-
// prone ReRAM) price through the identical Eq. 14 float path. MAC and
// DDR energies stay the package constants: operating points vary the
// on-chip buffer, not the arithmetic or the off-chip channel.
type Table struct {
	// AccessPJ prices one buffer access (βb).
	AccessPJ float64
	// RefreshPJ prices one word refresh (γ); zero for non-refreshing
	// technologies.
	RefreshPJ float64
	// WearPJ is the amortized ageing cost charged per buffer write;
	// zero for wear-free technologies.
	WearPJ float64
}

// Tech returns the technology's nominal energy table. SystemTable with
// this table is bit-identical to System: the same multiplications on
// the same constants, plus a zero wear term.
func (t BufferTech) Table() Table {
	return Table{AccessPJ: t.AccessPJ(), RefreshPJ: t.RefreshPJ()}
}

// SystemTable evaluates Eq. 14 (plus the wear extension) for the given
// operation counts against one operating point's energy table. This is
// the single pricing path of the scheduler, its admissible lower bound
// and the backend registry — pricing through one code path is what
// makes the bound-≤-exact argument hold at the float level for every
// backend, not just the paper's.
func SystemTable(c Counts, t Table) Breakdown {
	return Breakdown{
		Computing:    float64(c.MACs) * MACpJ,
		BufferAccess: float64(c.BufferAccesses) * t.AccessPJ,
		Refresh:      float64(c.Refreshes) * t.RefreshPJ,
		OffChip:      float64(c.DDRAccesses) * DDRAccessPJ,
		Wear:         float64(c.BufferWrites) * t.WearPJ,
	}
}

// System evaluates Eq. 14 for the given operation counts and buffer
// technology.
func System(c Counts, tech BufferTech) Breakdown {
	return SystemTable(c, tech.Table())
}

// EqualAreaEDRAMBytes returns the eDRAM capacity in bytes that fits in the
// same area as sramBytes of SRAM, rounded down to whole 32 KB banks. For
// the paper's 384 KB SRAM this is 1.454 MB of eDRAM... approximately: the
// paper rounds the raw area ratio to 1.454 MB, which this function
// reproduces by flooring to the bank grid.
func EqualAreaEDRAMBytes(sramBytes int64) int64 {
	sramBanks := sramBytes / BankBytes
	area := float64(sramBanks) * SRAMBankAreaMM2
	edramBanks := int64(area / EDRAMBankAreaMM2)
	return edramBanks * BankBytes
}
