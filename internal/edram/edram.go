// Package edram implements a functional embedded-DRAM buffer model
// (Fig. 4): banks of 16-bit words whose cells lose charge over time.
//
// Each cell has a retention time drawn from the platform's retention-time
// distribution (Fig. 8). A word read after its weakest cell's retention
// time has elapsed — measured from the last write or refresh — returns a
// corrupted value: the expired bits take random values, exactly the
// failure model the retention-aware training method injects (§IV-B).
// Writing a word recharges its cells, which is the physical basis of the
// OD pattern's output self-refresh property (§IV-C1).
//
// The model is word-granular and samples cell retention lazily, so large
// buffers cost memory only for the words actually touched.
package edram

import (
	"fmt"
	"time"

	"rana/internal/bits"
	"rana/internal/fixed"
	"rana/internal/retention"
)

// Buffer is a functional eDRAM buffer of Banks × WordsPerBank 16-bit
// words. The zero value is not usable; construct with New.
type Buffer struct {
	banks        int
	wordsPerBank int
	dist         *retention.Distribution
	rng          *bits.SplitMix64

	data []fixed.Word
	// charged[i] is the time the word's cells were last recharged
	// (written or refreshed). Valid only if touched[i].
	charged []time.Duration
	touched []bool
	// weakest[i] caches the word's sampled per-bit retention times as the
	// minimum per bit position, lazily initialized. Slices are carved out
	// of retArena blocks, not allocated per word: a huge sparse buffer
	// pays one block allocation per retArenaWords first-touched words
	// instead of one per word.
	weakest [][]time.Duration
	// retArena is the tail of the current arena block, carved in
	// fixed.WordBits-sized runs by cellRetention.
	retArena []time.Duration

	reads, writes, refreshes uint64
	corruptedReads           uint64
}

// New returns a buffer with the given geometry. dist supplies per-cell
// retention times; seed makes cell sampling and corruption deterministic.
func New(banks, wordsPerBank int, dist *retention.Distribution, seed uint64) (*Buffer, error) {
	if banks <= 0 || wordsPerBank <= 0 {
		return nil, fmt.Errorf("edram: invalid geometry %d banks × %d words", banks, wordsPerBank)
	}
	if dist == nil {
		return nil, fmt.Errorf("edram: nil retention distribution")
	}
	n := banks * wordsPerBank
	return &Buffer{
		banks:        banks,
		wordsPerBank: wordsPerBank,
		dist:         dist,
		rng:          bits.NewSplitMix64(seed),
		data:         make([]fixed.Word, n),
		charged:      make([]time.Duration, n),
		touched:      make([]bool, n),
		weakest:      make([][]time.Duration, n),
	}, nil
}

// Banks returns the bank count.
func (b *Buffer) Banks() int { return b.banks }

// WordsPerBank returns the per-bank word capacity.
func (b *Buffer) WordsPerBank() int { return b.wordsPerBank }

// Words returns the total word capacity.
func (b *Buffer) Words() int { return b.banks * b.wordsPerBank }

// addrCheck panics on out-of-range addresses: addresses come from the
// simulator's own mapping, where a bad address is a bug, not an input.
func (b *Buffer) addrCheck(addr int) {
	if addr < 0 || addr >= len(b.data) {
		panic(fmt.Sprintf("edram: address %d out of range [0,%d)", addr, len(b.data)))
	}
}

// Write stores w at addr at time now, recharging the word's cells.
func (b *Buffer) Write(addr int, w fixed.Word, now time.Duration) {
	b.addrCheck(addr)
	b.data[addr] = w
	b.charged[addr] = now
	b.touched[addr] = true
	b.writes++
}

// Read returns the word at addr as observed at time now. Bits whose cells'
// retention time has elapsed since the last recharge decay to random
// values. Reading an address never written returns a corrupted zero word
// consistent with uninitialized DRAM.
func (b *Buffer) Read(addr int, now time.Duration) fixed.Word {
	b.addrCheck(addr)
	b.reads++
	w := b.data[addr]
	if !b.touched[addr] {
		// Never charged: everything may have decayed since t=0.
		b.charged[addr] = 0
		b.touched[addr] = true
	}
	elapsed := now - b.charged[addr]
	if elapsed <= 0 {
		return w
	}
	bitsRet := b.cellRetention(addr)
	raw := fixed.Bits(w)
	corrupted := false
	for i, rt := range bitsRet {
		if elapsed > rt {
			corrupted = true
			if b.rng.Float64() < 0.5 {
				raw |= 1 << uint(i)
			} else {
				raw &^= 1 << uint(i)
			}
		}
	}
	if corrupted {
		b.corruptedReads++
	}
	// A DRAM read is destructive: the sense amplifiers latch the (possibly
	// decayed) value and write it back, recharging the cells. Persisting
	// the observed value and recharge time keeps repeated reads coherent.
	b.data[addr] = fixed.FromBits(raw)
	b.charged[addr] = now
	return fixed.FromBits(raw)
}

// retArenaWords is how many words' retention samples one arena block
// holds. At 16 bits × 8 bytes a block is 32 KB — big enough to amortize
// allocation to ~1/256th of a slice-per-word scheme, small enough that
// a barely-touched buffer wastes at most one block.
const retArenaWords = 256

// cellRetention lazily samples the 16 per-bit cell retention times of a
// word from the distribution. First touches draw exactly fixed.WordBits
// samples in bit order (the deterministic-replay contract: the RNG
// stream depends only on the touch sequence, not on how the backing
// storage is allocated), and the sample slice is carved from the arena
// with a full capacity cap so no caller can grow one word's run into
// its neighbor's.
func (b *Buffer) cellRetention(addr int) []time.Duration {
	if b.weakest[addr] == nil {
		if len(b.retArena) < fixed.WordBits {
			b.retArena = make([]time.Duration, retArenaWords*fixed.WordBits)
		}
		rs := b.retArena[:fixed.WordBits:fixed.WordBits]
		b.retArena = b.retArena[fixed.WordBits:]
		for i := range rs {
			rs[i] = b.dist.SampleCellRetention(b.rng)
		}
		b.weakest[addr] = rs
	}
	return b.weakest[addr]
}

// RefreshBank recharges every word in the bank at time now and returns
// the number of word-refresh operations performed (= WordsPerBank): the
// γ contribution of one bank refresh (0.788 µJ per 32 KB bank, Table II).
func (b *Buffer) RefreshBank(bank int, now time.Duration) uint64 {
	if bank < 0 || bank >= b.banks {
		panic(fmt.Sprintf("edram: bank %d out of range [0,%d)", bank, b.banks))
	}
	base := bank * b.wordsPerBank
	for i := 0; i < b.wordsPerBank; i++ {
		addr := base + i
		// Refresh reads and rewrites the cell before decay; decayed bits
		// are latched as-is (refresh cannot restore lost charge), which
		// is why refresh must arrive within the retention time.
		if b.touched[addr] {
			elapsed := now - b.charged[addr]
			for j, rt := range b.cellRetention(addr) {
				if elapsed > rt {
					raw := fixed.Bits(b.data[addr])
					if b.rng.Float64() < 0.5 {
						raw |= 1 << uint(j)
					} else {
						raw &^= 1 << uint(j)
					}
					b.data[addr] = fixed.FromBits(raw)
				}
			}
		}
		b.charged[addr] = now
		b.touched[addr] = true
	}
	b.refreshes += uint64(b.wordsPerBank)
	return uint64(b.wordsPerBank)
}

// Stats reports the buffer's operation counters.
type Stats struct {
	Reads, Writes, Refreshes, CorruptedReads uint64
}

// Stats returns the accumulated operation counters.
func (b *Buffer) Stats() Stats {
	return Stats{Reads: b.reads, Writes: b.writes, Refreshes: b.refreshes, CorruptedReads: b.corruptedReads}
}
