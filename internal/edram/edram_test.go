package edram

import (
	"testing"
	"testing/quick"
	"time"

	"rana/internal/fixed"
	"rana/internal/retention"
)

func newTestBuffer(t *testing.T, banks, words int) *Buffer {
	t.Helper()
	b, err := New(banks, words, retention.Typical(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGeometry(t *testing.T) {
	b := newTestBuffer(t, 4, 128)
	if b.Banks() != 4 || b.WordsPerBank() != 128 || b.Words() != 512 {
		t.Errorf("geometry: %d banks × %d = %d", b.Banks(), b.WordsPerBank(), b.Words())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10, retention.Typical(), 1); err == nil {
		t.Error("zero banks should fail")
	}
	if _, err := New(1, 0, retention.Typical(), 1); err == nil {
		t.Error("zero words should fail")
	}
	if _, err := New(1, 1, nil, 1); err == nil {
		t.Error("nil distribution should fail")
	}
}

func TestReadBeforeRetentionTimeIsClean(t *testing.T) {
	b := newTestBuffer(t, 1, 1024)
	for i := 0; i < 1024; i++ {
		b.Write(i, fixed.Word(i), 0)
	}
	// 10 µs < every cell's retention time (first anchor): no corruption.
	for i := 0; i < 1024; i++ {
		if got := b.Read(i, 9*time.Microsecond); got != fixed.Word(i) {
			t.Fatalf("word %d corrupted before retention time: %d", i, got)
		}
	}
	if b.Stats().CorruptedReads != 0 {
		t.Errorf("corrupted reads = %d", b.Stats().CorruptedReads)
	}
}

func TestDecayAfterLongIdle(t *testing.T) {
	b := newTestBuffer(t, 1, 4096)
	for i := 0; i < 4096; i++ {
		b.Write(i, 0x5A5A, 0)
	}
	// 200 ms exceeds the last anchor (100 ms): every cell decays.
	corrupted := 0
	for i := 0; i < 4096; i++ {
		if b.Read(i, 200*time.Millisecond) != 0x5A5A {
			corrupted++
		}
	}
	// Each of 16 bits becomes a coin flip: nearly all words change.
	if float64(corrupted)/4096 < 0.99 {
		t.Errorf("only %d/4096 words decayed after 200ms", corrupted)
	}
}

func TestDecayRateMatchesDistribution(t *testing.T) {
	dist := retention.Typical()
	b, err := New(1, 60000, dist, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60000; i++ {
		b.Write(i, 0x0F0F, 0)
	}
	// At t = 25 ms the cell failure rate is 1e-2; with 16 cells/word the
	// expected fraction of corrupted READS is ≈ 16 · 1e-2 / 2 = 8%
	// observable flips... we check corrupted *words* instead: a word is
	// corrupted if any of its 16 cells expired AND the coin flip changed
	// the bit: 1-(1-p/2)^16 with p = rate(25ms).
	at := 25 * time.Millisecond
	p := dist.FailureRate(at)
	want := 1.0
	for i := 0; i < 16; i++ {
		want *= 1 - p/2
	}
	want = 1 - want
	corrupted := 0
	for i := 0; i < 60000; i++ {
		if b.Read(i, at) != 0x0F0F {
			corrupted++
		}
	}
	got := float64(corrupted) / 60000
	if got < want*0.7 || got > want*1.3 {
		t.Errorf("corrupted word fraction = %.4f, want ≈%.4f", got, want)
	}
}

func TestWriteRecharges(t *testing.T) {
	b := newTestBuffer(t, 1, 16)
	b.Write(3, 123, 0)
	// Rewrite at 50 ms recharges; a read shortly after is clean even
	// though 50 ms from t=0 would have decayed many cells.
	b.Write(3, 456, 50*time.Millisecond)
	if got := b.Read(3, 50*time.Millisecond+time.Microsecond); got != 456 {
		t.Errorf("recharged word reads %d, want 456", got)
	}
}

func TestRefreshBankMaintainsData(t *testing.T) {
	b := newTestBuffer(t, 2, 256)
	for i := 0; i < 512; i++ {
		b.Write(i, fixed.Word(i), 0)
	}
	// Refresh bank 0 every 40 µs out to 4 ms; bank 1 never.
	var now time.Duration
	for now = 0; now < 4*time.Millisecond; now += 40 * time.Microsecond {
		if words := b.RefreshBank(0, now); words != 256 {
			t.Fatalf("RefreshBank returned %d words", words)
		}
	}
	clean, dirty := 0, 0
	for i := 0; i < 256; i++ {
		if b.Read(i, now) == fixed.Word(i) {
			clean++
		}
		if b.Read(256+i, now) != fixed.Word(256+i) {
			dirty++
		}
	}
	if clean != 256 {
		t.Errorf("refreshed bank: %d/256 clean", clean)
	}
	// 4 ms sits between the 1e-3 (8ms) and 1e-4 (2.5ms) anchors; with
	// 256 words × 16 cells ≈ 4096 cells at ~5e-4, a couple of words in
	// the unrefreshed bank may decay — but it must not be refreshed-clean
	// by accident. We only require the refresh counter to be correct.
	_ = dirty
	if got := b.Stats().Refreshes; got != 256*100 {
		t.Errorf("refresh ops = %d, want %d", got, 256*100)
	}
}

func TestRepeatedDecayedReadsAgree(t *testing.T) {
	b := newTestBuffer(t, 1, 64)
	b.Write(0, 0x1234, 0)
	at := 300 * time.Millisecond
	first := b.Read(0, at)
	for i := 0; i < 10; i++ {
		if got := b.Read(0, at); got != first {
			t.Fatalf("read %d: %d != first %d", i, got, first)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := newTestBuffer(t, 1, 8)
	for _, fn := range []func(){
		func() { b.Read(8, 0) },
		func() { b.Read(-1, 0) },
		func() { b.Write(99, 0, 0) },
		func() { b.RefreshBank(1, 0) },
		func() { b.RefreshBank(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestWriteReadRoundTripProperty: any word written and read back within
// the safe window is returned verbatim.
func TestWriteReadRoundTripProperty(t *testing.T) {
	b := newTestBuffer(t, 2, 512)
	f := func(raw int16, addr uint16, dtUS uint8) bool {
		a := int(addr) % b.Words()
		now := time.Duration(dtUS%100) * time.Millisecond * 10 // arbitrary base
		b.Write(a, fixed.Word(raw), now)
		return b.Read(a, now+5*time.Microsecond) == fixed.Word(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStatsCounters(t *testing.T) {
	b := newTestBuffer(t, 1, 16)
	b.Write(0, 1, 0)
	b.Write(1, 2, 0)
	b.Read(0, time.Microsecond)
	b.RefreshBank(0, time.Microsecond)
	s := b.Stats()
	if s.Writes != 2 || s.Reads != 1 || s.Refreshes != 16 {
		t.Errorf("stats = %+v", s)
	}
}

// TestLazySamplingAllocationBound pins the arena contract: first-touch
// sampling of n words costs ~n/retArenaWords block allocations, not one
// slice per word, and the carved runs stay independent (full cap, no
// neighbor bleed).
func TestLazySamplingAllocationBound(t *testing.T) {
	const words = 4 * retArenaWords
	b := newTestBuffer(t, 1, words)
	avg := testing.AllocsPerRun(1, func() {
		for addr := 0; addr < words; addr++ {
			b.Read(addr, time.Second) // decayed read forces sampling
		}
	})
	// The second run re-reads already-sampled words, so the measured run
	// allocates nothing beyond noise; the bound is deliberately loose.
	if avg > float64(words)/retArenaWords+4 {
		t.Errorf("sampling %d words averaged %.0f allocs, want O(%d) blocks",
			words, avg, words/retArenaWords)
	}
	// Neighboring words' retention runs must not alias.
	r0 := b.cellRetention(0)
	r1 := b.cellRetention(1)
	if &r0[0] == &r1[0] {
		t.Fatal("adjacent words share a retention run")
	}
	if cap(r0) != fixed.WordBits {
		t.Errorf("retention run cap = %d, want %d (full cap against bleed)", cap(r0), fixed.WordBits)
	}
	old := r1[0]
	_ = append(r0[:fixed.WordBits], time.Hour) // would bleed without the cap
	if r1[0] != old {
		t.Fatal("append through word 0's run overwrote word 1's samples")
	}
}

// BenchmarkLazySampling measures first-touch sampling cost over a huge
// sparse buffer. The arena keeps allocs/op at ~1/retArenaWords — run
// with -benchmem (ReportAllocs is on) to watch the bound.
func BenchmarkLazySampling(bm *testing.B) {
	bm.ReportAllocs()
	buf, err := New(64, 1<<16, retention.Typical(), 42) // 4M words, sparse touch
	if err != nil {
		bm.Fatal(err)
	}
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		// Stride through the buffer so every read is a fresh first touch
		// until the address space wraps.
		addr := (i * 8191) % buf.Words()
		buf.Read(addr, time.Second)
	}
}
