package sram

import (
	"testing"
	"testing/quick"
	"time"

	"rana/internal/fixed"
)

func TestRoundTrip(t *testing.T) {
	b, err := New(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw int16, addr uint8) bool {
		a := int(addr) % b.Words()
		b.Write(a, fixed.Word(raw), 0)
		// SRAM never decays, regardless of elapsed time.
		return b.Read(a, 24*time.Hour) == fixed.Word(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestGeometryAndValidation(t *testing.T) {
	b, err := New(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if b.Banks() != 3 || b.WordsPerBank() != 100 || b.Words() != 300 {
		t.Error("geometry mismatch")
	}
	if _, err := New(0, 1); err == nil {
		t.Error("zero banks should fail")
	}
	if _, err := New(1, -1); err == nil {
		t.Error("negative words should fail")
	}
}

func TestCounters(t *testing.T) {
	b, _ := New(1, 8)
	b.Write(0, 1, 0)
	b.Write(1, 2, 0)
	b.Read(0, 0)
	b.Read(0, 0)
	b.Read(1, 0)
	if b.Writes() != 2 || b.Reads() != 3 {
		t.Errorf("writes=%d reads=%d", b.Writes(), b.Reads())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b, _ := New(1, 4)
	for _, fn := range []func(){
		func() { b.Read(4, 0) },
		func() { b.Write(-1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
