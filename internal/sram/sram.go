// Package sram implements the SRAM buffer counterpart of internal/edram
// for the S+ID baseline design: latch-based storage that never decays and
// never refreshes, at higher area and access energy (Table II).
package sram

import (
	"fmt"
	"time"

	"rana/internal/fixed"
)

// Buffer is a functional SRAM buffer. The zero value is not usable;
// construct with New.
type Buffer struct {
	banks        int
	wordsPerBank int
	data         []fixed.Word
	reads        uint64
	writes       uint64
}

// New returns a buffer of banks × wordsPerBank 16-bit words.
func New(banks, wordsPerBank int) (*Buffer, error) {
	if banks <= 0 || wordsPerBank <= 0 {
		return nil, fmt.Errorf("sram: invalid geometry %d banks × %d words", banks, wordsPerBank)
	}
	return &Buffer{
		banks:        banks,
		wordsPerBank: wordsPerBank,
		data:         make([]fixed.Word, banks*wordsPerBank),
	}, nil
}

// Banks returns the bank count.
func (b *Buffer) Banks() int { return b.banks }

// WordsPerBank returns the per-bank word capacity.
func (b *Buffer) WordsPerBank() int { return b.wordsPerBank }

// Words returns the total word capacity.
func (b *Buffer) Words() int { return b.banks * b.wordsPerBank }

// Write stores w at addr. The time argument mirrors the eDRAM interface
// and is ignored: SRAM retention is unconditional.
func (b *Buffer) Write(addr int, w fixed.Word, _ time.Duration) {
	b.check(addr)
	b.data[addr] = w
	b.writes++
}

// Read returns the word at addr, always uncorrupted.
func (b *Buffer) Read(addr int, _ time.Duration) fixed.Word {
	b.check(addr)
	b.reads++
	return b.data[addr]
}

// Reads returns the accumulated read count.
func (b *Buffer) Reads() uint64 { return b.reads }

// Writes returns the accumulated write count.
func (b *Buffer) Writes() uint64 { return b.writes }

func (b *Buffer) check(addr int) {
	if addr < 0 || addr >= len(b.data) {
		panic(fmt.Sprintf("sram: address %d out of range [0,%d)", addr, len(b.data)))
	}
}
