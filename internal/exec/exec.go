// Package exec is the execution phase of the RANA framework (Fig. 6,
// right half): it runs a scheduled network end to end on the functional
// hardware models — words move from the DDR model through the eDRAM (or
// SRAM) buffer into the arithmetic, the refresh-optimized controller
// issues pulses per the compiled per-layer flags, and retention decay is
// physically simulated. The output is both the network's numerical result
// and the measured operation counters, so energy can be accounted from
// observed behaviour rather than the analytical model.
//
// Word-accurate execution is only tractable for small networks (every
// MAC is simulated); the benchmark-scale evaluation uses the analytical
// path in internal/platform. This engine exists to validate the whole
// RANA pipeline against physics: the compiled refresh schedule must keep
// results exact while skipping nearly all refresh operations.
package exec

import (
	"fmt"
	"time"

	"rana/internal/ddr"
	"rana/internal/edram"
	"rana/internal/energy"
	"rana/internal/fixed"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/retention"
	"rana/internal/sched"
	"rana/internal/sim"
	"rana/internal/sram"
)

// Observer receives per-layer execution events from Run. The verification
// harness (internal/verify) plugs runtime invariant checks in here — e.g.
// that the model clock stays monotonic across chained RunFunctionalAt
// calls and that refresh counters never decrease. A non-nil error aborts
// the run.
type Observer interface {
	// LayerExecuted fires after layer index completes: start and end are
	// the layer's window on the engine's model clock, refreshWords the
	// cumulative word-refresh count after the layer.
	LayerExecuted(index int, layer models.ConvLayer, start, end time.Duration, refreshWords uint64) error
}

// Engine executes scheduled networks on functional models.
type Engine struct {
	Config hw.Config
	Dist   *retention.Distribution
	// Format is the deployment fixed-point format.
	Format fixed.Format
	// Seed drives cell-retention sampling.
	Seed uint64
	// Observer, when non-nil, receives per-layer execution events.
	Observer Observer
}

// New returns an engine for the configuration with the typical retention
// distribution and Q8.8 arithmetic.
func New(cfg hw.Config) *Engine {
	return &Engine{Config: cfg, Dist: retention.Typical(), Format: fixed.Q88, Seed: 1}
}

// Report is the outcome of one network execution.
type Report struct {
	// Output is the final layer's output read back through the buffer.
	Output []fixed.Word
	// Ideal is the same network computed with perfect memory.
	Ideal []fixed.Word
	// WordErrors counts final-output words that differ from Ideal.
	WordErrors int
	// ExecTime is the modeled wall time of the whole network.
	ExecTime time.Duration
	// Counts are the measured Eq. 14 operation coefficients: α from the
	// arithmetic, βb from buffer counters, γ from the refresh issuer and
	// βd from the DDR model.
	Counts energy.Counts
	// Energy prices the measured counts.
	Energy energy.Breakdown
}

// Run executes a scheduled plan whose network chains (each layer's input
// shape matches the previous layer's output) starting from input. The
// plan's per-layer refresh flags program the controller; a nil plan entry
// set is invalid. Weights are supplied per layer, indexed like the plan.
func (e *Engine) Run(plan *sched.Plan, input []fixed.Word, weights [][]fixed.Word) (*Report, error) {
	if plan == nil || len(plan.Layers) == 0 {
		return nil, fmt.Errorf("exec: empty plan")
	}
	if len(weights) != len(plan.Layers) {
		return nil, fmt.Errorf("exec: %d weight sets for %d layers", len(weights), len(plan.Layers))
	}
	if err := validateChain(plan.Network); err != nil {
		return nil, err
	}
	cfg := e.Config

	// Functional buffer: eDRAM decays and needs the refresh machinery;
	// SRAM retains unconditionally and runs without a controller.
	var buf sim.Storage
	var refresher *sim.Refresher
	banks := cfg.Banks()
	switch cfg.BufferTech {
	case energy.EDRAM:
		eb, err := edram.New(banks, cfg.BankWords, e.Dist, e.Seed)
		if err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
		div, err := memctrl.NewDivider(cfg.FrequencyHz, plan.Options.RefreshInterval)
		if err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
		issuer, err := memctrl.NewIssuer(div, banks)
		if err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
		buf = eb
		refresher = &sim.Refresher{Issuer: issuer, Target: eb}
	case energy.SRAM:
		sb, err := sram.New(banks, cfg.BankWords)
		if err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
		buf = sb
	default:
		return nil, fmt.Errorf("exec: unknown buffer technology %v", cfg.BufferTech)
	}

	mem := ddr.New()
	mem.Store("act0", input)
	for i, ws := range weights {
		l := plan.Network.Layers[i]
		if uint64(len(ws)) != l.WeightWords() {
			return nil, fmt.Errorf("exec: layer %d: %d weights, want %d", i, len(ws), l.WeightWords())
		}
		mem.Store(fmt.Sprintf("w%d", i), ws)
	}

	report := &Report{}
	var macs uint64
	ideal := append([]fixed.Word(nil), input...)
	macsPerCycle := cfg.PEs()

	for i := range plan.Layers {
		l := plan.Network.Layers[i]
		lp := plan.Layers[i]

		// Stage 3: load this layer's refresh flags (§IV-D2). The compiled
		// per-type needs are mapped onto the engine's actual buffer
		// layout ([inputs | weights | outputs]). SRAM needs none.
		if refresher != nil {
			if err := refresher.Issuer.SetFlags(functionalFlags(l, lp.Needs, cfg.BankWords, banks)); err != nil {
				return nil, fmt.Errorf("exec: layer %d: %w", i, err)
			}
		}

		acts, err := mem.Load(fmt.Sprintf("act%d", i))
		if err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
		ws, err := mem.Load(fmt.Sprintf("w%d", i))
		if err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
		layerStart := report.ExecTime
		res, err := sim.RunFunctionalAt(l, e.Format, acts, ws, buf, refresher,
			macsPerCycle, cfg.FrequencyHz, report.ExecTime)
		if err != nil {
			return nil, fmt.Errorf("exec: layer %d (%s): %w", i, l.Name, err)
		}
		macs += l.MACs()
		report.ExecTime += res.ExecTime
		if e.Observer != nil {
			var issued uint64
			if refresher != nil {
				issued = refresher.Issuer.Issued()
			}
			if err := e.Observer.LayerExecuted(i, l, layerStart, report.ExecTime, issued); err != nil {
				return nil, fmt.Errorf("exec: layer %d (%s): invariant: %w", i, l.Name, err)
			}
		}
		mem.Store(fmt.Sprintf("act%d", i+1), res.Output)

		// Ideal path with perfect memory.
		ideal = idealConv(l, e.Format, ideal, ws)

		if i == len(plan.Layers)-1 {
			report.Output = res.Output
		}
	}

	report.Ideal = ideal
	for i := range report.Output {
		if report.Output[i] != report.Ideal[i] {
			report.WordErrors++
		}
	}
	report.Counts = energy.Counts{
		MACs:        macs,
		DDRAccesses: mem.Accesses(),
	}
	if refresher != nil {
		report.Counts.Refreshes = refresher.Issuer.Issued()
	}
	switch b := buf.(type) {
	case *edram.Buffer:
		st := b.Stats()
		report.Counts.BufferAccesses = st.Reads + st.Writes
	case *sram.Buffer:
		report.Counts.BufferAccesses = b.Reads() + b.Writes()
	}
	report.Energy = energy.System(report.Counts, cfg.BufferTech)
	return report, nil
}

// functionalFlags maps the plan's per-type refresh needs onto the
// engine's [inputs | weights | outputs] buffer layout: a bank is flagged
// when any word it holds belongs to a data type that needs refresh.
func functionalFlags(l models.ConvLayer, needs memctrl.Needs, bankWords, banks int) []bool {
	flags := make([]bool, banks)
	din := int(l.InputWords())
	dw := int(l.WeightWords())
	dout := int(l.OutputWords())
	mark := func(lo, hi int, on bool) {
		if !on {
			return
		}
		for b := lo / bankWords; b <= (hi-1)/bankWords && b < banks; b++ {
			flags[b] = true
		}
	}
	mark(0, din, needs.Inputs)
	mark(din, din+dw, needs.Weights)
	mark(din+dw, din+dw+dout, needs.Outputs)
	return flags
}

// validateChain checks that each layer consumes the previous layer's
// output shape.
func validateChain(net models.Network) error {
	if err := net.Validate(); err != nil {
		return err
	}
	for i := 1; i < len(net.Layers); i++ {
		prev, cur := net.Layers[i-1], net.Layers[i]
		if cur.N != prev.M || cur.H != prev.R() || cur.L != prev.C() {
			return fmt.Errorf("exec: layer %q input %dx%dx%d does not chain from %q output %dx%dx%d",
				cur.Name, cur.N, cur.H, cur.L, prev.Name, prev.M, prev.R(), prev.C())
		}
		if cur.Groups > 1 {
			return fmt.Errorf("exec: grouped layer %q unsupported in functional execution", cur.Name)
		}
	}
	return nil
}

// idealConv computes one layer with perfect memory (the oracle).
func idealConv(l models.ConvLayer, f fixed.Format, inputs, weights []fixed.Word) []fixed.Word {
	R, C := l.R(), l.C()
	out := make([]fixed.Word, l.OutputWords())
	inAt := func(n, r, c int) int { return (n*l.H+r)*l.L + c }
	wAt := func(m, n, kr, kc int) int { return ((m*l.N+n)*l.K+kr)*l.K + kc }
	for m := 0; m < l.M; m++ {
		for or := 0; or < R; or++ {
			for oc := 0; oc < C; oc++ {
				var acc fixed.Acc
				for n := 0; n < l.N; n++ {
					for kr := 0; kr < l.K; kr++ {
						ir := or*l.S + kr - l.P
						if ir < 0 || ir >= l.H {
							continue
						}
						for kc := 0; kc < l.K; kc++ {
							ic := oc*l.S + kc - l.P
							if ic < 0 || ic >= l.L {
								continue
							}
							acc = fixed.MAC(acc, inputs[inAt(n, ir, ic)], weights[wAt(m, n, kr, kc)])
						}
					}
				}
				out[(m*R+or)*C+oc] = f.Fold(acc)
			}
		}
	}
	return out
}
