package exec

import (
	"testing"
	"time"

	"rana/internal/bits"
	"rana/internal/energy"
	"rana/internal/fixed"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/retention"
	"rana/internal/sched"
)

// chainNet is a small 3-layer chainable network: 2×6×6 → 4×6×6 → 8×6×6
// → 4×3×3 (stride-2 tail), ≈7k MACs total.
func chainNet() models.Network {
	return models.Network{Name: "chain", Layers: []models.ConvLayer{
		{Name: "l0", Stage: "s", N: 2, H: 6, L: 6, M: 4, K: 3, S: 1, P: 1},
		{Name: "l1", Stage: "s", N: 4, H: 6, L: 6, M: 8, K: 1, S: 1, P: 0},
		{Name: "l2", Stage: "s", N: 8, H: 6, L: 6, M: 4, K: 3, S: 2, P: 1},
	}}
}

// tinyConfig is a 4-bank eDRAM accelerator; small BankWords keep the
// functional buffer compact. frequencyHz sets the decay regime.
func tinyConfig(freq float64) hw.Config {
	return hw.Config{
		Name:        "tiny",
		ArrayM:      2,
		ArrayN:      2,
		FrequencyHz: freq,
		LocalInput:  512,
		LocalOutput: 256,
		LocalWeight: 512,
		BufferWords: 4 * 512,
		BufferTech:  energy.EDRAM,
		BankWords:   512,
	}
}

func schedulePlan(t *testing.T, cfg hw.Config, interval time.Duration) *sched.Plan {
	t.Helper()
	plan, err := sched.Schedule(chainNet(), cfg, sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: interval,
		Controller:      memctrl.RefreshOptimized{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func randWeights(t *testing.T, net models.Network, seed uint64) [][]fixed.Word {
	t.Helper()
	rng := bits.NewSplitMix64(seed)
	out := make([][]fixed.Word, len(net.Layers))
	for i, l := range net.Layers {
		ws := make([]fixed.Word, l.WeightWords())
		for j := range ws {
			ws[j] = fixed.Q88.FromFloat(rng.NormFloat64() * 0.2)
		}
		out[i] = ws
	}
	return out
}

func randInput(net models.Network, seed uint64) []fixed.Word {
	rng := bits.NewSplitMix64(seed)
	in := make([]fixed.Word, net.Layers[0].InputWords())
	for i := range in {
		in[i] = fixed.Q88.FromFloat(rng.NormFloat64() * 0.3)
	}
	return in
}

// TestFastExecutionIsExactAndRefreshFree: at 200 MHz the whole network
// runs in microseconds — every lifetime beats the 734 µs tolerable
// retention, the compiled schedule disables all refresh, and the output
// is exact. This is the RANA end-to-end promise, executed on physics.
func TestFastExecutionIsExactAndRefreshFree(t *testing.T) {
	cfg := tinyConfig(200e6)
	plan := schedulePlan(t, cfg, retention.TolerableRetentionTime)
	e := New(cfg)
	rep, err := e.Run(plan, randInput(chainNet(), 1), randWeights(t, chainNet(), 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.WordErrors != 0 {
		t.Errorf("fast execution corrupted %d words", rep.WordErrors)
	}
	if rep.Counts.Refreshes != 0 {
		t.Errorf("refresh-free schedule issued %d refreshes", rep.Counts.Refreshes)
	}
	if rep.Counts.MACs != chainNet().TotalMACs() {
		t.Errorf("MACs = %d", rep.Counts.MACs)
	}
	if rep.Counts.DDRAccesses == 0 || rep.Counts.BufferAccesses == 0 {
		t.Error("counters not populated")
	}
	if rep.Energy.Total() <= 0 {
		t.Error("energy not accounted")
	}
}

// TestSlowExecutionCorruptsWithoutRefresh: at 20 kHz the network takes
// ≈100 model-milliseconds; with a refresh interval scheduled far above
// every cell's retention the flags stay off... to force the no-refresh
// regime we schedule at an interval longer than the execution, so no
// pulse ever fires, and the output decays.
func TestSlowExecutionCorruptsWithoutRefresh(t *testing.T) {
	cfg := tinyConfig(20e3)
	// Interval 1s: lifetimes (≈100 ms) are below it → flags off → no
	// refresh; but cell retention (≤100 ms) expires → corruption.
	plan := schedulePlan(t, cfg, time.Second)
	e := New(cfg)
	e.Seed = 7
	rep, err := e.Run(plan, randInput(chainNet(), 3), randWeights(t, chainNet(), 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counts.Refreshes != 0 {
		t.Fatalf("expected no refresh, got %d", rep.Counts.Refreshes)
	}
	if rep.WordErrors == 0 {
		t.Error("expected decay corruption in the slow no-refresh regime")
	}
}

// TestSlowExecutionWithTightRefreshIsExact: same slow clock, but the
// schedule programs a refresh interval below every cell's retention time
// (9 µs < the distribution's 10 µs floor) — all flags come on and the
// result is exact at a large refresh cost.
func TestSlowExecutionWithTightRefreshIsExact(t *testing.T) {
	// 200 kHz: execution ≈9 model-ms, long enough for weak cells to
	// expire, while one clock cycle (5 µs) still fits the 9 µs period.
	cfg := tinyConfig(200e3)
	plan := schedulePlan(t, cfg, 9*time.Microsecond)
	e := New(cfg)
	e.Seed = 8
	rep, err := e.Run(plan, randInput(chainNet(), 5), randWeights(t, chainNet(), 6))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counts.Refreshes == 0 {
		t.Fatal("tight schedule should refresh")
	}
	if rep.WordErrors != 0 {
		t.Errorf("refreshed execution corrupted %d words", rep.WordErrors)
	}
	if rep.Energy.Refresh <= 0 {
		t.Error("refresh energy should be accounted")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := tinyConfig(200e6)
	plan := schedulePlan(t, cfg, retention.TolerableRetentionTime)
	e := New(cfg)
	net := chainNet()
	if _, err := e.Run(nil, nil, nil); err == nil {
		t.Error("nil plan should fail")
	}
	if _, err := e.Run(plan, randInput(net, 1), nil); err == nil {
		t.Error("missing weights should fail")
	}
	ws := randWeights(t, net, 2)
	ws[0] = ws[0][:3]
	if _, err := e.Run(plan, randInput(net, 1), ws); err == nil {
		t.Error("short weights should fail")
	}
	// Non-chaining network.
	bad := models.Network{Name: "bad", Layers: []models.ConvLayer{
		{Name: "a", N: 2, H: 6, L: 6, M: 4, K: 3, S: 1, P: 1},
		{Name: "b", N: 3, H: 6, L: 6, M: 4, K: 1, S: 1, P: 0},
	}}
	badPlan, err := sched.Schedule(bad, cfg, sched.Options{
		Patterns:        []pattern.Kind{pattern.OD},
		RefreshInterval: retention.TolerableRetentionTime,
		Controller:      memctrl.RefreshOptimized{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(badPlan, randInput(bad, 1), randWeights(t, bad, 2)); err == nil {
		t.Error("non-chaining network should fail")
	}
}

// TestSRAMExecution: the S+ID-style substrate runs without a controller
// and is exact regardless of time scale.
func TestSRAMExecution(t *testing.T) {
	cfg := tinyConfig(20e3).WithBufferTech(energy.SRAM) // deliberately slow
	plan, err := sched.Schedule(chainNet(), cfg, sched.Options{
		Patterns: []pattern.Kind{pattern.OD, pattern.WD},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(cfg).Run(plan, randInput(chainNet(), 1), randWeights(t, chainNet(), 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.WordErrors != 0 {
		t.Errorf("SRAM execution corrupted %d words", rep.WordErrors)
	}
	if rep.Counts.Refreshes != 0 || rep.Energy.Refresh != 0 {
		t.Error("SRAM must not refresh")
	}
	if rep.Counts.BufferAccesses == 0 {
		t.Error("buffer counter not populated")
	}
}

func TestFunctionalFlags(t *testing.T) {
	l := models.ConvLayer{Name: "f", N: 2, H: 6, L: 6, M: 4, K: 3, S: 1, P: 1}
	// din=72, dw=72, dout=144 with bankWords=100 over 4 banks:
	// inputs span bank 0, weights banks 0-1, outputs banks 1-2.
	flags := functionalFlags(l, memctrl.Needs{Weights: true}, 100, 4)
	want := []bool{true, true, false, false}
	for i := range want {
		if flags[i] != want[i] {
			t.Fatalf("flags = %v, want %v", flags, want)
		}
	}
	flags = functionalFlags(l, memctrl.Needs{Outputs: true}, 100, 4)
	want = []bool{false, true, true, false}
	for i := range want {
		if flags[i] != want[i] {
			t.Fatalf("output flags = %v, want %v", flags, want)
		}
	}
	if f := functionalFlags(l, memctrl.Needs{}, 100, 4); f[0] || f[1] || f[2] || f[3] {
		t.Error("no needs should flag nothing")
	}
}

// TestDeterministicReports: identical seeds give identical outputs and
// counters.
func TestDeterministicReports(t *testing.T) {
	cfg := tinyConfig(200e3)
	plan := schedulePlan(t, cfg, 9*time.Microsecond)
	run := func() *Report {
		e := New(cfg)
		e.Seed = 11
		rep, err := e.Run(plan, randInput(chainNet(), 5), randWeights(t, chainNet(), 6))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Counts != b.Counts {
		t.Errorf("counts differ: %+v vs %+v", a.Counts, b.Counts)
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			t.Fatal("outputs differ across identical runs")
		}
	}
}
