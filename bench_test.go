// The benchmark harness regenerates every table and figure of the paper —
// one Benchmark per artifact, each reporting that artifact's headline
// metric via b.ReportMetric — plus the design-choice ablations called out
// in DESIGN.md §6. Run with:
//
//	go test -bench=. -benchmem
package rana

import (
	"io"
	"testing"
	"time"

	"rana/internal/bits"
	"rana/internal/energy"
	"rana/internal/exec"
	"rana/internal/experiments"
	"rana/internal/fixed"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/platform"
	"rana/internal/retention"
	"rana/internal/sched"
	"rana/internal/sim"
	"rana/internal/training"
)

// runArtifact drives the registered experiment printer (discarding the
// text) so every benchmark regenerates the artifact end to end.
func runArtifact(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { runArtifact(b, "table1") }
func BenchmarkTable2(b *testing.B) { runArtifact(b, "table2") }
func BenchmarkTable3(b *testing.B) { runArtifact(b, "table3") }

func BenchmarkFigure1(b *testing.B) {
	var refreshShare float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		refreshShare = rows[0].Share.Refresh
	}
	b.ReportMetric(refreshShare*100, "%refresh/stage0")
}

func BenchmarkFigure7(b *testing.B) {
	var over int
	for i := 0; i < b.N; i++ {
		over = 0
		for _, r := range experiments.Figure7() {
			if r.ExceedRT {
				over++
			}
		}
	}
	b.ReportMetric(float64(over), "layers>45us")
}

func BenchmarkFigure8(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		curve := experiments.Figure8()
		rate = curve[len(curve)/2].Rate
	}
	b.ReportMetric(rate, "midcurve-rate")
}

func BenchmarkFigure11(b *testing.B) {
	var atTolerable float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Figure11() {
			if r.Model == "ResNet" && r.Rate == 1e-5 {
				atTolerable = r.Relative
			}
		}
	}
	b.ReportMetric(atTolerable*100, "%rel-acc@1e-5")
}

// BenchmarkFigure11Empirical runs the actual retention-aware training
// loop (reduced problem size so one iteration stays near a second).
func BenchmarkFigure11Empirical(b *testing.B) {
	cfg := training.DefaultConfig()
	cfg.Epochs = 1
	var rel float64
	for i := 0; i < b.N; i++ {
		m := training.NewMethod(cfg, 80)
		rel = m.Run(1e-4).RelativeAccuracy()
	}
	b.ReportMetric(rel*100, "%rel-acc@1e-4")
}

func BenchmarkFigure12(b *testing.B) {
	var maxW float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Figure12() {
			if r.WeightMB > maxW {
				maxW = r.WeightMB
			}
		}
	}
	b.ReportMetric(maxW, "maxweightMB")
}

func BenchmarkFigure15(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure15()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Design == "RANA*(E-5)" && c.Model == "GEO MEAN" {
				geo = c.Energy.Total()
			}
		}
	}
	b.ReportMetric((1-geo)*100, "%saved-vs-S+ID")
}

func BenchmarkFigure16(b *testing.B) {
	var odRefreshAt720 float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure16()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Design == "eD+OD" && c.RetentionTime == 720*time.Microsecond {
				odRefreshAt720 = c.Refresh
			}
		}
	}
	b.ReportMetric(odRefreshAt720, "eD+OD-refresh@720us")
}

func BenchmarkFigure17(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure17()
		if err != nil {
			b.Fatal(err)
		}
		worst = 1.0
		for _, r := range rows {
			if r.Normalized.Total() < worst {
				worst = r.Normalized.Total()
			}
		}
	}
	b.ReportMetric((1-worst)*100, "%best-layer-saving")
}

func BenchmarkFigure18(b *testing.B) {
	var growth float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure18()
		if err != nil {
			b.Fatal(err)
		}
		caps := experiments.Fig18Capacities()
		var lo, hi float64
		for _, c := range cells {
			if c.Model == "AlexNet" && c.Design == "RANA (E-5)" {
				if c.CapacityWords == caps[0] {
					lo = c.Energy.Refresh
				}
				if c.CapacityWords == caps[5] {
					hi = c.Energy.Refresh
				}
			}
		}
		growth = hi - lo
	}
	b.ReportMetric(growth, "conv-refresh-growth")
}

func BenchmarkFigure19(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure19()
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, c := range cells {
			if c.Design == "RANA*(E-5)" {
				sum += 1 - c.Energy.Total()
				n++
			}
		}
		saved = sum / float64(n)
	}
	b.ReportMetric(saved*100, "%saved-vs-DaDianNao")
}

func BenchmarkHeadline(b *testing.B) {
	var h experiments.HeadlineResult
	for i := 0; i < b.N; i++ {
		var err error
		h, err = experiments.Headline()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.RefreshRemovedVsEDID*100, "%refresh-removed")
	b.ReportMetric(h.OffChipSavedVsSID*100, "%offchip-saved")
	b.ReportMetric(h.EnergySavedVsSID*100, "%energy-saved")
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationPattern quantifies what the hybrid pattern buys over
// single-pattern scheduling on VGG (the Fig. 17 effect).
func BenchmarkAblationPattern(b *testing.B) {
	p := platform.Test()
	net := models.VGG()
	single := platform.EDOD()
	hybrid := platform.RANA0()
	var ratio float64
	for i := 0; i < b.N; i++ {
		s, err := p.Evaluate(single, net)
		if err != nil {
			b.Fatal(err)
		}
		h, err := p.Evaluate(hybrid, net)
		if err != nil {
			b.Fatal(err)
		}
		ratio = h.Energy().Total() / s.Energy().Total()
	}
	b.ReportMetric((1-ratio)*100, "%hybrid-saving")
}

// BenchmarkAblationController quantifies the refresh-optimized controller
// against the conventional one at 8× capacity, where unused-bank refresh
// hurts most (the Fig. 18 effect).
func BenchmarkAblationController(b *testing.B) {
	p := platform.Test()
	net := models.AlexNet()
	cap := uint64(hw.TestEDRAMWords) * 8
	var saving float64
	for i := 0; i < b.N; i++ {
		conv, err := p.Evaluate(platform.RANAE5().WithBufferWords(cap), net)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := p.Evaluate(platform.RANAStarE5().WithBufferWords(cap), net)
		if err != nil {
			b.Fatal(err)
		}
		saving = 1 - opt.Energy().Refresh/conv.Energy().Refresh
	}
	b.ReportMetric(saving*100, "%refresh-saving@8x")
}

// BenchmarkAblationRetention quantifies what Stage 1's longer tolerable
// retention buys: RANA at 45 µs vs at 734 µs on ResNet.
func BenchmarkAblationRetention(b *testing.B) {
	p := platform.Test()
	net := models.ResNet()
	var saving float64
	for i := 0; i < b.N; i++ {
		short, err := p.Evaluate(platform.RANA0(), net)
		if err != nil {
			b.Fatal(err)
		}
		long, err := p.Evaluate(platform.RANAE5(), net)
		if err != nil {
			b.Fatal(err)
		}
		saving = 1 - long.Energy().Total()/short.Energy().Total()
	}
	b.ReportMetric(saving*100, "%stage1-saving")
}

// BenchmarkAblationTiling compares the full tiling exploration against
// the natural-tiling baseline space under the same OD+WD patterns.
func BenchmarkAblationTiling(b *testing.B) {
	cfg := hw.TestAcceleratorEDRAM()
	net := models.GoogLeNet()
	full := sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: retention.TolerableRetentionTime,
		Controller:      memctrl.RefreshOptimized{},
	}
	natural := full
	natural.NaturalTiling = true
	var saving float64
	for i := 0; i < b.N; i++ {
		f, err := sched.Schedule(net, cfg, full)
		if err != nil {
			b.Fatal(err)
		}
		n, err := sched.Schedule(net, cfg, natural)
		if err != nil {
			b.Fatal(err)
		}
		saving = 1 - f.Energy.Total()/n.Energy.Total()
	}
	b.ReportMetric(saving*100, "%exploration-saving")
}

// --- Microbenchmarks of the hot kernels ---

// BenchmarkAnalyzeLayer measures one closed-form layer characterization
// (the scheduler's inner loop).
func BenchmarkAnalyzeLayer(b *testing.B) {
	l, _ := models.VGG().Layer("conv4_2")
	cfg := hw.TestAcceleratorEDRAM()
	ti := pattern.Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = pattern.MustAnalyze(l, pattern.OD, ti, cfg)
	}
}

// BenchmarkScheduleLayer measures one full layer exploration.
func BenchmarkScheduleLayer(b *testing.B) {
	l, _ := models.VGG().Layer("conv4_2")
	cfg := hw.TestAcceleratorEDRAM()
	opts := sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: retention.TolerableRetentionTime,
		Controller:      memctrl.RefreshOptimized{},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ScheduleLayer(l, cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFixedMAC measures the 16-bit MAC primitive.
func BenchmarkFixedMAC(b *testing.B) {
	var acc fixed.Acc
	a, w := fixed.Word(1234), fixed.Word(-567)
	for i := 0; i < b.N; i++ {
		acc = fixed.MAC(acc, a, w)
	}
	_ = acc
}

// BenchmarkExt1Differential regenerates the differential-refresh
// extension experiment.
func BenchmarkExt1Differential(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Extension1DifferentialRefresh()
		if err != nil {
			b.Fatal(err)
		}
		var diff, cons uint64
		for _, r := range rows {
			diff += r.Differential
			cons += r.Uniform45
		}
		ratio = float64(diff) / float64(cons)
	}
	b.ReportMetric(ratio, "diff/conservative")
}

// BenchmarkExt2GuardBand regenerates the guard-band sensitivity sweep.
func BenchmarkExt2GuardBand(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Extension2GuardBand()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.Total > worst {
				worst = r.Total
			}
		}
	}
	b.ReportMetric(worst, "worst-guard-total")
}

// BenchmarkFunctionalExecution measures the word-accurate execution
// engine on a small chained network (the Stage 3 runtime, physics
// included).
func BenchmarkFunctionalExecution(b *testing.B) {
	net := models.Network{Name: "bench-chain", Layers: []models.ConvLayer{
		{Name: "l0", Stage: "s", N: 2, H: 8, L: 8, M: 4, K: 3, S: 1, P: 1},
		{Name: "l1", Stage: "s", N: 4, H: 8, L: 8, M: 4, K: 1, S: 1, P: 0},
	}}
	cfg := hw.Config{
		Name: "bench-tiny", ArrayM: 2, ArrayN: 2, FrequencyHz: 200e6,
		LocalInput: 512, LocalOutput: 256, LocalWeight: 512,
		BufferWords: 4 * 512, BufferTech: energy.EDRAM, BankWords: 512,
	}
	plan, err := sched.Schedule(net, cfg, sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: retention.TolerableRetentionTime,
		Controller:      memctrl.RefreshOptimized{},
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := bits.NewSplitMix64(1)
	input := make([]fixed.Word, net.Layers[0].InputWords())
	for i := range input {
		input[i] = fixed.Q88.FromFloat(rng.NormFloat64() * 0.25)
	}
	var weights [][]fixed.Word
	for _, l := range net.Layers {
		ws := make([]fixed.Word, l.WeightWords())
		for i := range ws {
			ws[i] = fixed.Q88.FromFloat(rng.NormFloat64() * 0.25)
		}
		weights = append(weights, ws)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := exec.New(cfg).Run(plan, input, weights)
		if err != nil {
			b.Fatal(err)
		}
		if rep.WordErrors != 0 {
			b.Fatal("unexpected corruption")
		}
	}
}

// BenchmarkWalkLayer measures the cycle-level walker on Layer-B.
func BenchmarkWalkLayer(b *testing.B) {
	l, _ := models.VGG().Layer("conv4_2")
	cfg := hw.TestAcceleratorEDRAM()
	ti := pattern.Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sim.Walk(l, pattern.OD, ti, cfg)
	}
}

// BenchmarkExt3Batch regenerates the batch-processing extension.
func BenchmarkExt3Batch(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Extension3Batch()
		if err != nil {
			b.Fatal(err)
		}
		best = 1
		for _, r := range rows {
			if r.PerImage < best {
				best = r.PerImage
			}
		}
	}
	b.ReportMetric((1-best)*100, "%best-per-image-saving")
}

// BenchmarkExt4Architecture regenerates the architecture-generality study.
func BenchmarkExt4Architecture(b *testing.B) {
	var star float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Extension4Architecture()
		if err != nil {
			b.Fatal(err)
		}
		star = rows[len(rows)-1].GeoMean
	}
	b.ReportMetric((1-star)*100, "%saved-vs-eD+ID")
}

// --- Facade entry points (the serving subsystem's unit of work) ---

// BenchmarkSchedule measures one full Stage-2 schedule per benchmark
// network through the public facade — the cost of a ranad /v1/schedule
// cache miss.
func BenchmarkSchedule(b *testing.B) {
	cfg := hw.TestAcceleratorEDRAM()
	opts := sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: retention.TolerableRetentionTime,
		Controller:      memctrl.RefreshOptimized{},
	}
	for _, net := range models.Benchmarks() {
		b.Run(net.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan, err := Schedule(net, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(plan.Energy.Total()/1e9, "mJ")
				}
			}
		})
	}
}

// BenchmarkCompile measures the full three-stage compilation per
// benchmark network — the cost of a ranad /v1/compile cache miss.
func BenchmarkCompile(b *testing.B) {
	for _, net := range models.Benchmarks() {
		b.Run(net.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := NewFramework().Compile(net)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(out.TolerableRetention.Microseconds()), "us-retention")
				}
			}
		})
	}
}
