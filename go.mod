module rana

go 1.22
