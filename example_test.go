package rana_test

import (
	"fmt"

	"rana"
	"rana/internal/memctrl"
	"rana/internal/sched"
)

// ExampleAnalyze reproduces the paper's running case: Layer-A
// (res4a_branch1) under the output-dominant pattern has a 72 µs data
// lifetime — comfortably below the 734 µs tolerable retention time, so
// it needs no eDRAM refresh at all (§IV-C1).
func ExampleAnalyze() {
	layerA, _ := rana.ResNet().Layer("res4a_branch1")
	a := rana.MustAnalyze(layerA, rana.OD,
		rana.Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}, rana.TestAccelerator())
	fmt.Printf("lifetime: %v\n", a.Lifetimes.Output.Round(1000))
	fmt.Printf("refresh-free: %v\n", a.Lifetimes.Max() < rana.TolerableRetentionTime)
	// Output:
	// lifetime: 72µs
	// refresh-free: true
}

// ExampleFramework_compile runs all three RANA stages on AlexNet and
// prints the Stage 1 decision.
func ExampleFramework_compile() {
	out, err := rana.NewFramework().Compile(rana.AlexNet())
	if err != nil {
		panic(err)
	}
	fmt.Printf("tolerable failure rate: %.0e\n", out.TolerableRate)
	fmt.Printf("refresh interval: %v\n", out.TolerableRetention)
	// Output:
	// tolerable failure rate: 1e-05
	// refresh interval: 734µs
}

// ExampleSchedule plans one network on a custom design point and reports
// which computation patterns the hybrid schedule picked.
func ExampleSchedule() {
	plan, err := rana.Schedule(rana.VGG(), rana.TestAccelerator().
		WithBufferTech(rana.EDRAMTech).
		WithBufferWords(1454*1024/2), // the paper's 1.454 MB
		sched.Options{
			Patterns:        []rana.Pattern{rana.OD, rana.WD},
			RefreshInterval: rana.TolerableRetentionTime,
			Controller:      memctrl.RefreshOptimized{},
		})
	if err != nil {
		panic(err)
	}
	wd := 0
	for _, lp := range plan.Layers {
		if lp.Analysis.Pattern == rana.WD {
			wd++
		}
	}
	fmt.Printf("layers scheduled: %d (WD on %d shallow layers)\n", len(plan.Layers), wd)
	// Output:
	// layers scheduled: 13 (WD on 6 shallow layers)
}

// ExampleTypicalRetention shows the Fig. 8 anchor lookups.
func ExampleTypicalRetention() {
	d := rana.TypicalRetention()
	fmt.Printf("conventional: %v\n", d.RetentionTime(3e-6))
	fmt.Printf("tolerable:    %v\n", d.RetentionTime(1e-5))
	// Output:
	// conventional: 45µs
	// tolerable:    734µs
}
