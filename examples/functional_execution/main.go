// Functional execution: run a small network word-by-word through the
// decaying eDRAM model under three refresh regimes, demonstrating the
// physics RANA exploits — data whose lifetime beats retention needs no
// refresh; data that lingers either decays or must be refreshed.
//
//	go run ./examples/functional_execution
package main

import (
	"fmt"
	"log"
	"time"

	"rana"
	"rana/internal/bits"
	"rana/internal/energy"
	"rana/internal/exec"
	"rana/internal/fixed"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/pattern"
	"rana/internal/sched"
)

func main() {
	net := rana.Network{Name: "demo", Layers: []rana.ConvLayer{
		{Name: "l0", Stage: "s", N: 2, H: 8, L: 8, M: 4, K: 3, S: 1, P: 1},
		{Name: "l1", Stage: "s", N: 4, H: 8, L: 8, M: 6, K: 1, S: 1, P: 0},
		{Name: "l2", Stage: "s", N: 6, H: 8, L: 8, M: 4, K: 3, S: 2, P: 1},
	}}

	cfg := hw.Config{
		Name: "demo-accelerator", ArrayM: 2, ArrayN: 2,
		FrequencyHz: 20e3, // deliberately slow: data lingers for ~100 model-ms
		LocalInput:  512, LocalOutput: 256, LocalWeight: 512,
		BufferWords: 4 * 512, BufferTech: energy.EDRAM, BankWords: 512,
	}

	rng := bits.NewSplitMix64(1)
	input := randWords(rng, int(net.Layers[0].InputWords()))
	var weights [][]fixed.Word
	for _, l := range net.Layers {
		weights = append(weights, randWords(rng, int(l.WeightWords())))
	}

	run := func(label string, interval time.Duration) {
		plan, err := rana.Schedule(net, cfg, sched.Options{
			Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
			RefreshInterval: interval,
			Controller:      memctrl.RefreshOptimized{},
		})
		if err != nil {
			log.Fatal(err)
		}
		engine := exec.New(cfg)
		rep, err := engine.Run(plan, input, weights)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s exec=%8v  refresh ops=%7d  corrupted outputs=%d/%d\n",
			label, rep.ExecTime.Round(time.Millisecond), rep.Counts.Refreshes,
			rep.WordErrors, len(rep.Output))
	}

	fmt.Println("executing a 3-layer network word-by-word through decaying eDRAM")
	fmt.Println("(clock slowed to 20 kHz so the whole run takes ~0.2 model-seconds,")
	fmt.Println("far beyond every cell's retention time):")
	fmt.Println()
	// Interval longer than the run: no pulse ever fires → decay.
	run("no refresh (interval 1s)", time.Second)
	// Tight interval below the weakest cell: always safe, very costly.
	run("conservative (50us)", 50*time.Microsecond)

	fmt.Println()
	fmt.Println("at deployment speed (200 MHz) the same network finishes in ~1 ms of")
	fmt.Println("model time per layer window; every lifetime beats the 734us tolerable")
	fmt.Println("retention and RANA's compiled schedule disables refresh entirely:")
	fmt.Println()
	cfg.FrequencyHz = 200e6
	run("RANA schedule @200MHz (734us)", rana.TolerableRetentionTime)
}

func randWords(rng *bits.SplitMix64, n int) []fixed.Word {
	out := make([]fixed.Word, n)
	for i := range out {
		out[i] = fixed.Q88.FromFloat(rng.NormFloat64() * 0.25)
	}
	return out
}
