// Capacity sweep (Fig. 18): sweep the eDRAM buffer from 0.25x to 8x of
// the design point and compare the conventional refresh controller
// against RANA's refresh-optimized controller. The conventional
// controller refreshes unused banks, so its energy grows with capacity;
// the optimized controller's does not.
//
//	go run ./examples/capacity_sweep -model AlexNet
package main

import (
	"flag"
	"fmt"
	"log"

	"rana"
	"rana/internal/models"
)

func main() {
	model := flag.String("model", "AlexNet", "benchmark network")
	flag.Parse()
	var net rana.Network
	ok := false
	for _, n := range rana.Benchmarks() {
		if n.Name == *model {
			net, ok = n, true
		}
	}
	if !ok {
		log.Fatalf("unknown model %q", *model)
	}

	p := rana.TestPlatform()
	fmt.Printf("sweeping %s across buffer capacities (refresh interval 734µs):\n\n", net.Name)
	fmt.Printf("%10s | %28s | %28s\n", "", "RANA (E-5), normal ctrl", "RANA*(E-5), optimized ctrl")
	fmt.Printf("%10s | %13s %14s | %13s %14s\n", "capacity", "total (mJ)", "refresh (mJ)", "total (mJ)", "refresh (mJ)")
	// 0.25x .. 8x of the 1.454 MB design point, as in Fig. 18.
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		cap := uint64(float64(1454*1024/2) * mult)
		conv, err := p.Evaluate(rana.RANAE5().WithBufferWords(cap), net)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := p.Evaluate(rana.RANAStarE5().WithBufferWords(cap), net)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.3fMB | %13.3f %14.4f | %13.3f %14.4f\n",
			models.PaperMB(cap),
			conv.Energy().Total()/1e9, conv.Energy().Refresh/1e9,
			opt.Energy().Total()/1e9, opt.Energy().Refresh/1e9)
	}
	fmt.Println("\nnote how the normal controller's refresh column grows with capacity")
	fmt.Println("(it refreshes every bank, used or not) while the optimized controller's")
	fmt.Println("stays flat once the buffer covers the working set — Fig. 18's contrast.")
}
