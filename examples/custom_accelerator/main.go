// Custom accelerator: bring your own hardware configuration and network,
// then let RANA's scheduler pick computation patterns and tilings per
// layer. Demonstrates using the library beyond the paper's platforms —
// here an edge-class 8×8 accelerator with 256 KB of eDRAM running a small
// detection-style backbone at 320×320 input.
//
//	go run ./examples/custom_accelerator
package main

import (
	"fmt"
	"log"

	"rana"
	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/pattern"
)

func main() {
	// An edge accelerator: 64 PEs at 400 MHz, 12 KB core local storage,
	// 256 KB of eDRAM in 32 KB banks.
	cfg := hw.Config{
		Name:        "edge-8x8",
		ArrayM:      8,
		ArrayN:      8,
		Mapping:     hw.MapOutputPixel,
		FrequencyHz: 400e6,
		LocalInput:  3072,
		LocalOutput: 1024,
		LocalWeight: 2048,
		BufferWords: 256 * 1024 / 2,
		BufferTech:  energy.EDRAM,
		BankWords:   energy.BankWords,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	// A small backbone: stride-2 stem, then alternating 3×3 and 1×1
	// stages at decreasing resolution.
	net := rana.Network{Name: "edge-backbone", Layers: []rana.ConvLayer{
		{Name: "stem", Stage: "s1", N: 3, H: 320, L: 320, M: 16, K: 3, S: 2, P: 1},
		{Name: "b1_dw", Stage: "s1", N: 16, H: 160, L: 160, M: 32, K: 3, S: 2, P: 1},
		{Name: "b1_pw", Stage: "s1", N: 32, H: 80, L: 80, M: 64, K: 1, S: 1, P: 0},
		{Name: "b2_dw", Stage: "s2", N: 64, H: 80, L: 80, M: 64, K: 3, S: 2, P: 1},
		{Name: "b2_pw", Stage: "s2", N: 64, H: 40, L: 40, M: 128, K: 1, S: 1, P: 0},
		{Name: "b3_dw", Stage: "s3", N: 128, H: 40, L: 40, M: 128, K: 3, S: 2, P: 1},
		{Name: "b3_pw", Stage: "s3", N: 128, H: 20, L: 20, M: 256, K: 1, S: 1, P: 0},
		{Name: "head", Stage: "head", N: 256, H: 20, L: 20, M: 256, K: 3, S: 1, P: 1},
	}}
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}

	// Schedule with RANA's hybrid pattern at the tolerable retention time
	// and the refresh-optimized controller.
	plan, err := rana.Schedule(net, cfg, rana.ScheduleOptions{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: rana.TolerableRetentionTime,
		Controller:      memctrl.RefreshOptimized{},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("RANA schedule for %s on %s:\n\n", net.Name, cfg.Name)
	fmt.Printf("%-8s %-4s %-24s %12s %12s\n", "Layer", "Pat", "Tiling", "MaxLifetime", "Refresh")
	for i, lp := range plan.Layers {
		refresh := "off"
		if lp.Counts.Refreshes > 0 {
			refresh = fmt.Sprintf("%d ops", lp.Counts.Refreshes)
		}
		fmt.Printf("%-8s %-4s %-24s %12s %12s\n",
			net.Layers[i].Name, lp.Analysis.Pattern, lp.Analysis.Tiling.String(),
			lp.Analysis.Lifetimes.Max().Round(100), refresh)
	}
	e := plan.Energy
	fmt.Printf("\nsystem energy %.3f mJ (computing %.3f, buffer %.3f, refresh %.3f, off-chip %.3f)\n",
		e.Total()/1e9, e.Computing/1e9, e.BufferAccess/1e9, e.Refresh/1e9, e.OffChip/1e9)

	// Contrast: the same network scheduled with ID only (the conventional
	// pattern) under a conventional controller at the worst-case 45 µs.
	conv, err := rana.Schedule(net, cfg, rana.ScheduleOptions{
		Patterns:        []pattern.Kind{pattern.ID},
		RefreshInterval: rana.ConventionalRetentionTime,
		Controller:      memctrl.Conventional{},
		NaturalTiling:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional eD+ID schedule: %.3f mJ -> RANA saves %.1f%%\n",
		conv.Energy.Total()/1e9, (1-e.Total()/conv.Energy.Total())*100)
}
