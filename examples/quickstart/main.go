// Quickstart: compile ResNet-50 with the full RANA framework and compare
// the resulting design against the paper's SRAM baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rana"
)

func main() {
	// The framework bundles the paper's evaluation platform: the 256-PE
	// test accelerator with 1.454 MB of eDRAM at equal area to the
	// baseline's 384 KB of SRAM, and the Fig. 8 retention distribution.
	fw := rana.NewFramework()

	// Compile = Stage 1 (tolerable retention time from the accuracy
	// constraint) + Stage 2 (hybrid computation pattern) + Stage 3
	// (refresh flags and clock-divider programming).
	out, err := fw.Compile(rana.ResNet())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Summary())

	// Count the refresh-free layers: the core RANA effect.
	free := 0
	for _, lc := range out.Layerwise {
		needs := false
		for _, f := range lc.RefreshFlags {
			needs = needs || f
		}
		if !needs {
			free++
		}
	}
	fmt.Printf("\n%d of %d ResNet layers run entirely without eDRAM refresh\n",
		free, len(out.Layerwise))

	// Compare against the SRAM baseline at the same area.
	p := rana.TestPlatform()
	baseline, err := p.Evaluate(rana.SID(), rana.ResNet())
	if err != nil {
		log.Fatal(err)
	}
	ranaE := out.Energy.Total()
	sidE := baseline.Energy().Total()
	fmt.Printf("\nsystem energy: RANA %.1f mJ vs S+ID %.1f mJ (%.1f%% saved)\n",
		ranaE/1e9, sidE/1e9, (1-ranaE/sidE)*100)
	fmt.Printf("off-chip access energy: %.1f mJ vs %.1f mJ (%.1f%% saved)\n",
		out.Energy.OffChip/1e9, baseline.Energy().OffChip/1e9,
		(1-out.Energy.OffChip/baseline.Energy().OffChip)*100)
}
