// Retention-aware training demonstration (§IV-B, Fig. 9): pretrain a
// fixed-point CNN, corrupt it with bit-level retention failures, retrain
// with failures injected in the forward pass, and watch tolerance improve.
//
//	go run ./examples/retention_training
package main

import (
	"fmt"

	"rana"
)

func main() {
	cfg := rana.DefaultTrainingConfig()
	fmt.Println("pretraining a 16-bit fixed-point CNN on the synthetic dataset...")
	m := rana.NewTrainingMethod(cfg, 600)
	fmt.Printf("clean fixed-point accuracy: %.1f%%\n\n", m.Baseline()*100)

	fmt.Println("injecting retention failures (each bit fails at rate r and")
	fmt.Println("takes a random value), then retraining with the same mask:")
	fmt.Printf("\n%10s %22s %22s\n", "rate r", "accuracy before retrain", "accuracy after retrain")
	for _, rate := range []float64{1e-5, 1e-4, 3e-4, 1e-3} {
		r := m.Run(rate)
		marker := ""
		if r.Retrained > r.Corrupted+0.01 {
			marker = "  <- retraining recovered accuracy"
		}
		fmt.Printf("%10.0e %21.1f%% %21.1f%%%s\n",
			rate, r.Corrupted*100, r.Retrained*100, marker)
	}

	fmt.Println("\nwhat this buys at the architecture level:")
	dist := rana.TypicalRetention()
	for _, rate := range []float64{3e-6, 1e-5, 1e-4} {
		fmt.Printf("  tolerating failure rate %.0e stretches the refresh interval to %v\n",
			rate, dist.RetentionTime(rate))
	}
	fmt.Printf("\nthe paper's operating point: rate %.0e -> %v (a 16x longer interval)\n",
		rana.TolerableFailureRate, rana.TolerableRetentionTime)
}
