// Command rana-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	rana-experiments -list                 # list artifact IDs
//	rana-experiments -run fig15            # one artifact as text
//	rana-experiments -run fig15 -json      # typed rows as JSON
//	rana-experiments -run fig15 -chart     # terminal stacked bars
//	rana-experiments                       # everything (default)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rana"
	"rana/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rana-experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available experiments and exit")
	runID := fs.String("run", "", "run a single experiment by ID (e.g. fig15)")
	asJSON := fs.Bool("json", false, "emit the experiment's typed data as JSON (with -run)")
	chart := fs.Bool("chart", false, "render the figure as a terminal stacked-bar chart (with -run)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *list:
		for _, e := range rana.Experiments() {
			fmt.Fprintf(stdout, "%-10s %s\n", e.ID, e.Title)
		}
	case *runID != "":
		e, ok := rana.ExperimentByID(*runID)
		if !ok {
			fmt.Fprintf(stderr, "rana-experiments: unknown experiment %q (try -list)\n", *runID)
			return 2
		}
		if *asJSON {
			if err := e.RunJSON(stdout); err != nil {
				fmt.Fprintln(stderr, "rana-experiments:", err)
				return 1
			}
			return 0
		}
		if *chart {
			c, err := experiments.Chart(e.ID)
			if err != nil {
				fmt.Fprintln(stderr, "rana-experiments:", err)
				return 1
			}
			fmt.Fprint(stdout, c.Render())
			return 0
		}
		fmt.Fprintf(stdout, "==== %s: %s ====\n", e.ID, e.Title)
		if err := e.Run(stdout); err != nil {
			fmt.Fprintln(stderr, "rana-experiments:", err)
			return 1
		}
	default:
		if err := rana.RunExperiments(stdout); err != nil {
			fmt.Fprintln(stderr, "rana-experiments:", err)
			return 1
		}
	}
	return 0
}
