package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"table1", "fig15", "headline", "ext3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunOne(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "table1"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "VGG") {
		t.Error("table1 output missing VGG")
	}
}

func TestRunJSONAndChart(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "table3", "-json"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), `"Relative"`) {
		t.Error("JSON output missing typed field")
	}
	out.Reset()
	if code := run([]string{"-run", "fig1", "-chart"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "legend:") {
		t.Error("chart output missing legend")
	}
}

func TestErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "nope"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown experiment exit = %d, want 2", code)
	}
	if code := run([]string{"-run", "table1", "-chart"}, &out, &errBuf); code != 1 {
		t.Errorf("chart of a table exit = %d, want 1", code)
	}
	if code := run([]string{"-bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}
