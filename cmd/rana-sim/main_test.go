package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAlexNet(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-model", "AlexNet", "-design", "eD+ID", "-normalize"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"eD+ID on AlexNet", "refresh ops:", "relative to S+ID:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// The paper's anchor: eD+ID on AlexNet ≈ 2.3× S+ID.
	if !strings.Contains(s, "2.30") {
		t.Errorf("expected ≈2.30x normalization in:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-model", "nope"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown model exit = %d", code)
	}
	if code := run([]string{"-design", "nope"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown design exit = %d", code)
	}
	if code := run([]string{"-bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
}
