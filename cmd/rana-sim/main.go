// Command rana-sim evaluates one Table IV design point on one benchmark
// network and prints the Eq. 14 energy accounting, optionally normalized
// against the SRAM baseline.
//
// Usage:
//
//	rana-sim -model VGG -design "RANA*(E-5)"
//	rana-sim -model ResNet -design eD+ID -normalize
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rana"
	"rana/internal/platform"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rana-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "ResNet", "benchmark network")
	design := fs.String("design", "RANA*(E-5)", `Table IV design point (e.g. "S+ID", "eD+OD")`)
	normalize := fs.Bool("normalize", false, "normalize against the S+ID baseline")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	net, ok := benchmarkByName(*model)
	if !ok {
		fmt.Fprintf(stderr, "rana-sim: unknown model %q\n", *model)
		return 2
	}
	d, ok := platform.DesignByName(*design)
	if !ok {
		fmt.Fprintf(stderr, "rana-sim: unknown design %q\n", *design)
		return 2
	}

	p := rana.TestPlatform()
	r, err := p.Evaluate(d, net)
	if err != nil {
		fmt.Fprintln(stderr, "rana-sim:", err)
		return 1
	}
	e := r.Energy()
	c := r.Plan.Totals
	fmt.Fprintf(stdout, "%s on %s\n", d.Name, net.Name)
	fmt.Fprintf(stdout, "  execution time:   %v\n", r.Plan.ExecTime.Round(1000))
	fmt.Fprintf(stdout, "  MACs:             %d\n", c.MACs)
	fmt.Fprintf(stdout, "  buffer accesses:  %d\n", c.BufferAccesses)
	fmt.Fprintf(stdout, "  refresh ops:      %d\n", c.Refreshes)
	fmt.Fprintf(stdout, "  DDR accesses:     %d\n", c.DDRAccesses)
	fmt.Fprintf(stdout, "  computing:        %10.3f mJ\n", e.Computing/1e9)
	fmt.Fprintf(stdout, "  buffer access:    %10.3f mJ\n", e.BufferAccess/1e9)
	fmt.Fprintf(stdout, "  refresh:          %10.3f mJ\n", e.Refresh/1e9)
	fmt.Fprintf(stdout, "  off-chip access:  %10.3f mJ\n", e.OffChip/1e9)
	fmt.Fprintf(stdout, "  total:            %10.3f mJ\n", e.Total()/1e9)

	if *normalize {
		base, err := p.Evaluate(rana.SID(), net)
		if err != nil {
			fmt.Fprintln(stderr, "rana-sim:", err)
			return 1
		}
		fmt.Fprintf(stdout, "  relative to S+ID: %10.3f\n", e.Total()/base.Energy().Total())
	}
	return 0
}

// benchmarkByName resolves a benchmark network by name.
func benchmarkByName(name string) (rana.Network, bool) {
	for _, n := range rana.Benchmarks() {
		if n.Name == name {
			return n, true
		}
	}
	return rana.Network{}, false
}
