// Command rana-trace dumps or analyzes the memory-access trace of one
// layer execution on the test accelerator — the §III-A "memory access
// tracing" facility as a tool.
//
// Usage:
//
//	rana-trace -model VGG -layer conv4_2 -pattern OD            # analysis
//	rana-trace -model VGG -layer conv4_2 -pattern OD -dump      # raw CSV
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rana"
	"rana/internal/hw"
	"rana/internal/pattern"
	"rana/internal/sched"
	"rana/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rana-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "ResNet", "benchmark network")
	layer := fs.String("layer", "res4a_branch1", "layer name")
	pat := fs.String("pattern", "OD", "computation pattern: ID, OD or WD")
	dump := fs.Bool("dump", false, "dump the raw trace (CSV) instead of the analysis")
	buckets := fs.Int("buckets", 8, "histogram buckets for the analysis view")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var net rana.Network
	found := false
	for _, n := range rana.Benchmarks() {
		if n.Name == *model {
			net, found = n, true
		}
	}
	if !found {
		fmt.Fprintf(stderr, "rana-trace: unknown model %q\n", *model)
		return 2
	}
	l, ok := net.Layer(*layer)
	if !ok {
		fmt.Fprintf(stderr, "rana-trace: layer %q not in %s\n", *layer, *model)
		return 2
	}
	var k pattern.Kind
	switch *pat {
	case "ID":
		k = pattern.ID
	case "OD":
		k = pattern.OD
	case "WD":
		k = pattern.WD
	default:
		fmt.Fprintf(stderr, "rana-trace: unknown pattern %q\n", *pat)
		return 2
	}

	cfg := hw.TestAcceleratorEDRAM()
	ti := sched.NaturalTiling(l, cfg)
	walk, mem := sim.WalkWithTrace(l, k, ti, cfg)

	if *dump {
		if err := mem.Write(stdout); err != nil {
			fmt.Fprintln(stderr, "rana-trace:", err)
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "%s/%s under %v at %v\n", *model, *layer, k, ti)
	fmt.Fprintf(stdout, "  events:      %d\n", len(mem.Events))
	fmt.Fprintf(stdout, "  cycles:      %d (%v)\n", walk.Cycles, walk.ExecTime.Round(100))
	c := mem.Count()
	fmt.Fprintf(stdout, "  input words:  %d read\n", c.Reads[0])
	fmt.Fprintf(stdout, "  output words: %d read, %d written\n", c.Reads[1], c.Writes[1])
	fmt.Fprintf(stdout, "  weight words: %d read\n", c.Reads[2])
	gaps := mem.MaxWriteGap()
	fmt.Fprintf(stdout, "  max output rewrite gap: %v (self-refresh interval)\n", mem.Duration(gaps[1]).Round(100))
	fmt.Fprintf(stdout, "  lifetimes: in=%v out=%v w=%v\n",
		walk.Lifetimes.Input.Round(100), walk.Lifetimes.Output.Round(100), walk.Lifetimes.Weight.Round(100))
	fmt.Fprintf(stdout, "\n  traffic over time (%d windows, words in/out/w):\n", *buckets)
	for i, b := range mem.Histogram(*buckets) {
		fmt.Fprintf(stdout, "    w%-2d %10d %10d %10d\n", i, b[0], b[1], b[2])
	}
	return 0
}
