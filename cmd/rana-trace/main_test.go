package main

import (
	"bytes"
	"strings"
	"testing"

	"rana/internal/trace"
)

func TestAnalysisView(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-model", "VGG", "-layer", "conv4_2", "-pattern", "OD", "-buckets", "4"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	// Layer-B's trace-derived self-refresh gap is the paper's 1290 µs.
	if !strings.Contains(s, "1.2902ms") {
		t.Errorf("missing the 1290µs self-refresh gap:\n%s", s)
	}
	if !strings.Contains(s, "traffic over time (4 windows") {
		t.Error("missing histogram")
	}
}

func TestDumpRoundTrips(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-model", "AlexNet", "-layer", "conv3", "-pattern", "WD", "-dump"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	tr, err := trace.ReadTrace(&out)
	if err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if len(tr.Events) == 0 || tr.FrequencyHz != 200e6 {
		t.Errorf("trace: %d events at %g Hz", len(tr.Events), tr.FrequencyHz)
	}
}

func TestErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-model", "nope"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown model exit = %d", code)
	}
	if code := run([]string{"-layer", "nope"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown layer exit = %d", code)
	}
	if code := run([]string{"-pattern", "XX"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown pattern exit = %d", code)
	}
	errBuf.Reset()
	if code := run([]string{"-bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
	if !strings.Contains(errBuf.String(), "flag provided but not defined") {
		t.Errorf("stderr missing flag diagnostic: %q", errBuf.String())
	}
}
