package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTrainSmall(t *testing.T) {
	var out, errBuf bytes.Buffer
	// One ladder rate (1e-5) on a tiny dataset keeps the test fast.
	code := run([]string{"-samples", "120", "-rates", "1", "-constraint", "0.9"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"baseline fixed-point accuracy", "1e-05", "stage 1 decision", "734µs"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestTrainCurves(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-samples", "120", "-rates", "1", "-constraint", "0.9", "-curves", "-trials", "1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"per-layer resilience curves", "layer conv1:", "layer fc:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if code := run([]string{"-samples", "120", "-curves", "-trials", "0"}, &out, &errBuf); code != 2 {
		t.Errorf("zero trials exit = %d, want 2", code)
	}
}

func TestTrainErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-samples", "2"}, &out, &errBuf); code != 2 {
		t.Errorf("tiny dataset exit = %d", code)
	}
	if code := run([]string{"-rates", "99"}, &out, &errBuf); code != 2 {
		t.Errorf("bad rates exit = %d", code)
	}
	if code := run([]string{"-bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
}
