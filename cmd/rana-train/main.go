// Command rana-train runs the retention-aware training method (Fig. 9)
// end to end on the synthetic demonstration dataset: fixed-point
// pretraining, retraining under bit-level retention failures across the
// paper's failure-rate ladder, and the Stage 1 tolerable-retention-time
// decision.
//
// Usage:
//
//	rana-train -samples 500 -constraint 0.95
//	rana-train -curves              # also emit per-layer resilience curves
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"rana"
	"rana/internal/retention"
	"rana/internal/training"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rana-train", flag.ContinueOnError)
	fs.SetOutput(stderr)
	samples := fs.Int("samples", 500, "synthetic dataset size")
	constraint := fs.Float64("constraint", 0.95, "relative accuracy constraint for the tolerance search")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	rates := fs.Int("rates", len(training.PaperRates), "how many ladder rates to evaluate (from 1e-5 upward)")
	curves := fs.Bool("curves", false, "also sweep per-layer resilience curves (failures injected one layer at a time)")
	trials := fs.Int("trials", 3, "trials to average each resilience-curve point over")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *samples < 40 {
		fmt.Fprintln(stderr, "rana-train: need at least 40 samples")
		return 2
	}
	if *rates < 1 || *rates > len(training.PaperRates) {
		fmt.Fprintf(stderr, "rana-train: -rates must be in [1, %d]\n", len(training.PaperRates))
		return 2
	}
	if *curves && *trials < 1 {
		fmt.Fprintln(stderr, "rana-train: -trials must be at least 1")
		return 2
	}

	cfg := rana.DefaultTrainingConfig()
	cfg.Seed = *seed
	fmt.Fprintf(stdout, "pretraining the fixed-point model on %d samples...\n", *samples)
	m := rana.NewTrainingMethod(cfg, *samples)
	fmt.Fprintf(stdout, "baseline fixed-point accuracy: %.1f%%\n\n", m.Baseline()*100)

	fmt.Fprintf(stdout, "%10s %12s %12s %12s\n", "rate", "corrupted", "retrained", "relative")
	var results []training.Result
	for _, rate := range training.PaperRates[:*rates] {
		r := m.Run(rate)
		results = append(results, r)
		fmt.Fprintf(stdout, "%10.0e %11.1f%% %11.1f%% %11.1f%%\n",
			rate, r.Corrupted*100, r.Retrained*100, r.RelativeAccuracy()*100)
	}

	best := 0.0
	for _, r := range results {
		if r.RelativeAccuracy() >= *constraint && r.Rate > best {
			best = r.Rate
		}
	}
	dist := retention.Typical()
	if best == 0 {
		fmt.Fprintf(stderr, "\nno rate meets the %.0f%% constraint; falling back to the conventional point\n", *constraint*100)
		best = retention.TypicalFailureRate
	}
	fmt.Fprintf(stdout, "\nstage 1 decision: tolerable failure rate %.0e -> tolerable retention time %v\n",
		best, dist.RetentionTime(best))
	fmt.Fprintf(stdout, "(conventional weakest-cell refresh interval: %v)\n", retention.TypicalRetentionTime)

	if *curves {
		if err := printCurves(stdout, m, training.PaperRates[:*rates], *trials); err != nil {
			fmt.Fprintln(stderr, "rana-train:", err)
			return 1
		}
	}
	return 0
}

// printCurves emits the per-layer resilience sweep: the pretrained
// model's accuracy with failures injected into one layer at a time —
// the empirical counterpart of the calibrated layer curves the
// scheduler admits operating points against.
func printCurves(stdout io.Writer, m *training.Method, ladder []float64, trials int) error {
	curves, err := m.LayerResilience(ladder, trials)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(curves))
	for name := range curves {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(stdout, "\nper-layer resilience curves (%d trials per point):\n", trials)
	for _, name := range names {
		fmt.Fprintf(stdout, "layer %s:\n", name)
		for _, p := range curves[name] {
			fmt.Fprintf(stdout, "%10.0e %11.1f%% %11.1f%%\n", p.Rate, p.Accuracy*100, p.Relative*100)
		}
	}
	return nil
}
