package main

// The concurrent-load latency section: rana-bench starts an in-process
// ranad (the same serve.Server the daemon runs) and measures the
// per-request wall clock of /v1/schedule under concurrent clients. The
// request mix rotates through the model zoo and periodically opens the
// traversal/mapping axes, so the server sees the realistic blend of
// plan-cache hits, full Stage-2 compiles, and enlarged-space compiles
// that dominate a fleet's tail latency.

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rana/internal/models"
	"rana/internal/serve"
)

// latencyRequest builds the i-th request body of the mix: models rotate
// round-robin, and every fourth request compiles with the traversal and
// mapping axes open (a distinct cache key and a heavier search).
func latencyRequest(nets []models.Network, i int) string {
	model := nets[i%len(nets)].Name
	if i%4 == 3 {
		return fmt.Sprintf(`{"model": %q, "options": {"traversal": "rtc", "mapping": "all"}}`, model)
	}
	return fmt.Sprintf(`{"model": %q}`, model)
}

// measureLatency fires requests /v1/schedule calls at an in-process
// ranad from clients concurrent goroutines and summarizes the latency
// distribution. Retryable shed/breaker responses (429/503) count as
// errors here rather than being retried: under a fixed concurrent load
// the tail the snapshot tracks is the server's, not a retry loop's.
func measureLatency(nets []models.Network, clients, requests int) (*LatencyBench, error) {
	if len(nets) == 0 {
		return nil, fmt.Errorf("latency: no models selected")
	}
	if clients > requests {
		clients = requests
	}
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	durations := make([]time.Duration, requests)
	var errs atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				body := latencyRequest(nets, i)
				start := time.Now()
				resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(body))
				if err != nil {
					errs.Add(1)
					durations[i] = time.Since(start)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
				}
				durations[i] = time.Since(start)
			}
		}()
	}
	wg.Wait()

	sort.Slice(durations, func(a, b int) bool { return durations[a] < durations[b] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return &LatencyBench{
		Clients:  clients,
		Requests: requests,
		P50Ms:    ms(percentile(durations, 0.50)),
		P90Ms:    ms(percentile(durations, 0.90)),
		P99Ms:    ms(percentile(durations, 0.99)),
		MaxMs:    ms(durations[len(durations)-1]),
		Errors:   int(errs.Load()),
	}, nil
}

// percentile reads the q-th quantile of a sorted sample using the
// nearest-rank definition (the standard for latency SLOs: p99 is the
// smallest observation ≥ 99% of the sample).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
