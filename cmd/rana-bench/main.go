// Command rana-bench records the scheduler performance trajectory: it
// compiles the benchmark zoo twice per model — the sequential
// un-memoized baseline against the optimized parallel+memoized default —
// and writes a BENCH_sched.json snapshot (ns/op, allocs/op, candidates
// evaluated, memo hit rate, speedup) so scheduler performance is
// comparable PR over PR.
//
// Usage:
//
//	rana-bench                         # write BENCH_sched.json
//	rana-bench -iters 5 -o bench.json  # more samples, custom path
//	rana-bench -models AlexNet,ResNet  # subset of the zoo
//	rana-bench -backends approx-dram,reram@fast-write  # backend cells
//
// Each snapshot entry is keyed by (network, strategy, backend): the
// default-adapter cell is always measured so trajectories stay
// comparable PR over PR, and -backends adds extra cells per model.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"rana/internal/hw"
	"rana/internal/mem"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/retention"
	"rana/internal/sched"
	"rana/internal/sched/search"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Run is one measured configuration of one model. Strategy labels the
// scheduling strategy the sample ran under, so a flattened snapshot
// stays keyed by (network, strategy, backend) without relying on the
// enclosing field name.
type Run struct {
	Strategy    string  `json:"strategy"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	Evaluated   int     `json:"candidates_evaluated"`
	MemoHits    int     `json:"memo_hits"`
	MemoMisses  int     `json:"memo_misses"`
	MemoHitRate float64 `json:"memo_hit_rate"`
	Workers     int     `json:"workers"`
}

// NetBench is one (network, strategy, backend) cell: the model's
// baseline/optimized strategy pair measured through one memory backend.
// Backend is the "-backend" spec verbatim; empty means the platform's
// default technology adapter, keeping legacy snapshots comparable.
type NetBench struct {
	Model     string  `json:"model"`
	Backend   string  `json:"backend,omitempty"`
	Layers    int     `json:"layers"`
	Baseline  Run     `json:"baseline"`
	Optimized Run     `json:"optimized"`
	SpeedupX  float64 `json:"speedup_x"`
}

// Snapshot is the BENCH_sched.json document.
type Snapshot struct {
	GeneratedAt string     `json:"generated_at"`
	GoVersion   string     `json:"go_version"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	Iters       int        `json:"iters"`
	Networks    []NetBench `json:"networks"`
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rana-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "BENCH_sched.json", "output path for the benchmark snapshot")
	iters := fs.Int("iters", 3, "timed compile iterations per configuration (the minimum is kept)")
	modelsFlag := fs.String("models", "", "comma-separated zoo subset (default: every benchmark network)")
	parallelism := fs.Int("parallelism", 0, "optimized run's search workers (0 = GOMAXPROCS)")
	backendsFlag := fs.String("backends", "", `comma-separated memory backend specs ("name" or "name@point") measured per model; empty means the default technology adapter only`)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *iters < 1 {
		fmt.Fprintln(stderr, "rana-bench: -iters must be >= 1")
		return 2
	}
	nets, err := selectModels(*modelsFlag)
	if err != nil {
		fmt.Fprintln(stderr, "rana-bench:", err)
		return 2
	}
	backends, err := selectBackends(*backendsFlag)
	if err != nil {
		fmt.Fprintln(stderr, "rana-bench:", err)
		return 2
	}

	cfg := hw.TestAcceleratorEDRAM()
	snap := Snapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Iters:       *iters,
	}
	for _, net := range nets {
		for _, spec := range backends {
			base := benchOpts(spec)
			base.Parallelism = 1
			base.DisableMemo = true
			opt := benchOpts(spec)
			opt.Parallelism = *parallelism

			baseline, err := measure(net, cfg, base, *iters)
			if err != nil {
				fmt.Fprintln(stderr, "rana-bench:", err)
				return 1
			}
			baseline.Strategy = "sequential"
			optimized, err := measure(net, cfg, opt, *iters)
			if err != nil {
				fmt.Fprintln(stderr, "rana-bench:", err)
				return 1
			}
			optimized.Strategy = "parallel-memoized"
			nb := NetBench{
				Model:     net.Name,
				Backend:   spec,
				Layers:    len(net.Layers),
				Baseline:  baseline,
				Optimized: optimized,
			}
			if optimized.NsPerOp > 0 {
				nb.SpeedupX = float64(baseline.NsPerOp) / float64(optimized.NsPerOp)
			}
			snap.Networks = append(snap.Networks, nb)
			label := net.Name
			if spec != "" {
				label += "/" + spec
			}
			fmt.Fprintf(stdout, "%-24s %3d layers: baseline %8.2fms, optimized %8.2fms (%.2fx, memo %d/%d hits, %d evals)\n",
				label, nb.Layers,
				float64(baseline.NsPerOp)/1e6, float64(optimized.NsPerOp)/1e6,
				nb.SpeedupX, optimized.MemoHits, optimized.MemoHits+optimized.MemoMisses,
				optimized.Evaluated)
		}
	}

	doc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "rana-bench:", err)
		return 1
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintln(stderr, "rana-bench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return 0
}

// benchOpts is the measured design point: the full RANA option set the
// golden schedules run under, through the given backend spec (empty =
// the default technology adapter).
func benchOpts(spec string) sched.Options {
	opts := sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: retention.TolerableRetentionTime,
		Controller:      memctrl.RefreshOptimized{},
	}
	if spec != "" {
		opts.Backend = spec
		if i := strings.IndexByte(spec, '@'); i >= 0 {
			opts.Backend, opts.OperatingPoint = spec[:i], spec[i+1:]
		}
	}
	return opts
}

// selectBackends validates the -backends flag against the registry. The
// empty spec — the default adapter — is always first so every snapshot
// carries the legacy-comparable cell.
func selectBackends(flagVal string) ([]string, error) {
	out := []string{""}
	if flagVal == "" {
		return out, nil
	}
	seen := map[string]bool{"": true}
	for _, spec := range strings.Split(flagVal, ",") {
		spec = strings.TrimSpace(spec)
		if seen[spec] {
			continue
		}
		if _, _, err := mem.ParseSpec(spec); err != nil {
			return nil, err
		}
		seen[spec] = true
		out = append(out, spec)
	}
	return out, nil
}

// measure compiles net iters times under opts and keeps the fastest
// wall-clock sample (minimum is the standard noise-resistant estimator
// for a deterministic workload); allocation numbers are averaged across
// the iterations via MemStats deltas. One untimed warmup run absorbs
// first-touch effects.
func measure(net models.Network, cfg hw.Config, opts sched.Options, iters int) (Run, error) {
	ctx := context.Background()
	if _, _, err := sched.ExploreNetworkContext(ctx, net, cfg, opts); err != nil {
		return Run{}, fmt.Errorf("%s: %w", net.Name, err)
	}
	var r Run
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	best := time.Duration(-1)
	var stats sched.NetworkStats
	for i := 0; i < iters; i++ {
		start := time.Now()
		_, st, err := sched.ExploreNetworkContext(ctx, net, cfg, opts)
		elapsed := time.Since(start)
		if err != nil {
			return Run{}, fmt.Errorf("%s: %w", net.Name, err)
		}
		if best < 0 || elapsed < best {
			best = elapsed
		}
		stats = st
	}
	runtime.ReadMemStats(&ms1)
	r.NsPerOp = best.Nanoseconds()
	r.AllocsPerOp = (ms1.Mallocs - ms0.Mallocs) / uint64(iters)
	r.BytesPerOp = (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(iters)
	r.Evaluated = stats.Search.Evaluated
	r.MemoHits = stats.MemoHits
	r.MemoMisses = stats.MemoMisses
	if n := stats.MemoHits + stats.MemoMisses; n > 0 {
		r.MemoHitRate = float64(stats.MemoHits) / float64(n)
	}
	r.Workers = search.EffectiveParallelism(opts.Parallelism)
	return r, nil
}

// selectModels resolves the -models flag against the zoo.
func selectModels(spec string) ([]models.Network, error) {
	all := models.Benchmarks()
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]models.Network, len(all))
	var names []string
	for _, n := range all {
		byName[n.Name] = n
		names = append(names, n.Name)
	}
	var out []models.Network
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		n, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown model %q (want one of %v)", name, names)
		}
		out = append(out, n)
	}
	return out, nil
}
