// Command rana-bench records the scheduler performance trajectory: it
// compiles the benchmark zoo twice per model — the sequential
// un-memoized baseline against the optimized parallel+memoized default —
// and writes a BENCH_sched.json snapshot (ns/op, allocs/op, candidates
// evaluated, memo hit rate, speedup) so scheduler performance is
// comparable PR over PR.
//
// Usage:
//
//	rana-bench                         # write BENCH_sched.json
//	rana-bench -iters 5 -o bench.json  # more samples, custom path
//	rana-bench -models AlexNet,ResNet  # subset of the zoo
//	rana-bench -backends approx-dram,reram@fast-write  # backend cells
//	rana-bench -o /tmp/b.json -regress BENCH_sched.json -axes=false
//	                                   # CI regression gate: hard-fail on
//	                                   # allocs/op growth, warn on ns/op
//
// Each snapshot entry is keyed by (network, strategy, backend): the
// default-adapter cell is always measured so trajectories stay
// comparable PR over PR, and -backends adds extra cells per model.
//
// Beyond compile throughput the snapshot carries three more sections:
// a "warm" run per cell (the same compile against a shared cross-compile
// memo, the fleet steady state), an "axes" section pricing the
// traversal/mapping search axes at both retention design points (the RTC
// win lives at the conventional 45µs interval, not RANA's extended
// 734µs one), and a "latency" section measuring p50/p99 of concurrent
// /v1/schedule requests against an in-process ranad.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"rana/internal/hw"
	"rana/internal/mem"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/retention"
	"rana/internal/sched"
	"rana/internal/sched/search"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Run is one measured configuration of one model. Strategy labels the
// scheduling strategy the sample ran under, so a flattened snapshot
// stays keyed by (network, strategy, backend) without relying on the
// enclosing field name.
type Run struct {
	Strategy    string  `json:"strategy"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	Evaluated   int     `json:"candidates_evaluated"`
	MemoHits    int     `json:"memo_hits"`
	MemoMisses  int     `json:"memo_misses"`
	MemoHitRate float64 `json:"memo_hit_rate"`
	// The prefix-sum memo's per-compile effectiveness: how much bound
	// pricing work near-duplicate shapes (GoogLeNet's inception branches)
	// reused below the whole-layer memo. Zero on the baseline run, which
	// disables incremental pricing.
	PrefixHits    uint64  `json:"prefix_hits"`
	PrefixMisses  uint64  `json:"prefix_misses"`
	PrefixHitRate float64 `json:"prefix_hit_rate"`
	Workers       int     `json:"workers"`
}

// NetBench is one (network, strategy, backend) cell: the model's
// baseline/optimized strategy pair measured through one memory backend.
// Backend is the "-backend" spec verbatim; empty means the platform's
// default technology adapter, keeping legacy snapshots comparable.
type NetBench struct {
	Model     string `json:"model"`
	Backend   string `json:"backend,omitempty"`
	Layers    int    `json:"layers"`
	Baseline  Run    `json:"baseline"`
	Optimized Run    `json:"optimized"`
	// Warm repeats the optimized compile against a shared cross-compile
	// memo primed by a prior run — the fleet steady state, where a
	// GoogLeNet whose cold intra-compile hit rate is ~14% (mostly
	// distinct layer shapes) goes to ~100% because the shapes were
	// already explored by the previous compile.
	Warm     Run     `json:"warm"`
	SpeedupX float64 `json:"speedup_x"`
}

// AxesBench is one (network, retention scenario) cell of the
// traversal/mapping axis sweep: the default-axes pruned optimum priced
// against the axes-enabled one under the same refresh interval. SavedPJ
// is the energy the enlarged space recovered; Winners lists the layers
// that left the default cell and what they moved to.
type AxesBench struct {
	Model             string   `json:"model"`
	Scenario          string   `json:"scenario"`
	RefreshIntervalUS float64  `json:"refresh_interval_us"`
	BaselinePJ        float64  `json:"baseline_pj"`
	AxesPJ            float64  `json:"axes_pj"`
	SavedPJ           float64  `json:"saved_pj"`
	SavedPct          float64  `json:"saved_pct"`
	Reordered         int      `json:"reordered_layers"`
	Winners           []string `json:"winners,omitempty"`
}

// LatencyBench is the concurrent-load section: Clients goroutines fire
// Requests /v1/schedule calls (a model/options mix, so the in-process
// ranad sees both plan-cache hits and full compiles) and the per-request
// wall-clock distribution is summarized.
type LatencyBench struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	Errors   int     `json:"errors"`
}

// Snapshot is the BENCH_sched.json document.
type Snapshot struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Iters       int           `json:"iters"`
	Networks    []NetBench    `json:"networks"`
	Axes        []AxesBench   `json:"axes,omitempty"`
	Latency     *LatencyBench `json:"latency,omitempty"`
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rana-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "BENCH_sched.json", "output path for the benchmark snapshot")
	iters := fs.Int("iters", 3, "timed compile iterations per configuration (the minimum is kept)")
	modelsFlag := fs.String("models", "", "comma-separated zoo subset (default: every benchmark network)")
	parallelism := fs.Int("parallelism", 0, "optimized run's search workers (0 = GOMAXPROCS)")
	backendsFlag := fs.String("backends", "", `comma-separated memory backend specs ("name" or "name@point") measured per model; empty means the default technology adapter only`)
	latClients := fs.Int("latency-clients", 8, "concurrent clients in the ranad latency section (0 skips it)")
	latRequests := fs.Int("latency-requests", 200, "total /v1/schedule requests in the ranad latency section")
	axes := fs.Bool("axes", true, "measure the traversal/mapping axis sweep section")
	regress := fs.String("regress", "", "path to a prior snapshot: hard-fail when any cell's allocs/op exceed the prior value by more than 25%+32, warn when ns/op more than doubles")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *iters < 1 {
		fmt.Fprintln(stderr, "rana-bench: -iters must be >= 1")
		return 2
	}
	nets, err := selectModels(*modelsFlag)
	if err != nil {
		fmt.Fprintln(stderr, "rana-bench:", err)
		return 2
	}
	backends, err := selectBackends(*backendsFlag)
	if err != nil {
		fmt.Fprintln(stderr, "rana-bench:", err)
		return 2
	}

	cfg := hw.TestAcceleratorEDRAM()
	snap := Snapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Iters:       *iters,
	}
	for _, net := range nets {
		for _, spec := range backends {
			// The baseline is the historical stateless path: sequential,
			// no memo, no incremental bound pricing.
			base := benchOpts(spec)
			base.Parallelism = 1
			base.DisableMemo = true
			base.DisableIncremental = true
			opt := benchOpts(spec)
			opt.Parallelism = *parallelism
			// The warm run shares one memo (and one prefix memo) across
			// compiles: measure's untimed warmup primes them, so every
			// timed iteration sees the previous compile's entries — the
			// fleet steady state, which must be allocation-free.
			warm := benchOpts(spec)
			warm.Parallelism = *parallelism
			warm.Memo = sched.NewMemo(0)
			warm.Prefix = sched.NewPrefixMemo(0)

			runs, err := measureAll(net, cfg, []sched.Options{base, opt, warm}, *iters)
			if err != nil {
				fmt.Fprintln(stderr, "rana-bench:", err)
				return 1
			}
			baseline, optimized, warmed := runs[0], runs[1], runs[2]
			baseline.Strategy = "sequential"
			optimized.Strategy = "parallel-memoized"
			warmed.Strategy = "parallel-memoized-warm"
			nb := NetBench{
				Model:     net.Name,
				Backend:   spec,
				Layers:    len(net.Layers),
				Baseline:  baseline,
				Optimized: optimized,
				Warm:      warmed,
			}
			if optimized.NsPerOp > 0 {
				nb.SpeedupX = float64(baseline.NsPerOp) / float64(optimized.NsPerOp)
			}
			snap.Networks = append(snap.Networks, nb)
			label := net.Name
			if spec != "" {
				label += "/" + spec
			}
			fmt.Fprintf(stdout, "%-24s %3d layers: baseline %8.2fms, optimized %8.2fms (%.2fx, memo %d/%d hits, prefix %.0f%%, warm %.0f%% @%d allocs, %d evals)\n",
				label, nb.Layers,
				float64(baseline.NsPerOp)/1e6, float64(optimized.NsPerOp)/1e6,
				nb.SpeedupX, optimized.MemoHits, optimized.MemoHits+optimized.MemoMisses,
				100*optimized.PrefixHitRate, 100*warmed.MemoHitRate, warmed.AllocsPerOp,
				optimized.Evaluated)
		}
	}

	// The traversal/mapping axis sweep, priced at both retention design
	// points. At RANA's extended 734µs interval refresh is already cheap
	// and the linear nest wins everywhere; at the conventional 45µs
	// interval consume-before-deadline reordering beats refreshing —
	// that contrast is the Stage-2 story the numbers have to tell.
	// -axes=false skips it (the CI regression gate only compares the
	// throughput cells).
	axesNets := nets
	if !*axes {
		axesNets = nil
	}
	for _, net := range axesNets {
		for _, sc := range []struct {
			name     string
			interval time.Duration
		}{
			{"extended-retention", retention.TolerableRetentionTime},
			{"conventional-retention", retention.TypicalRetentionTime},
		} {
			ab, err := measureAxes(net, cfg, sc.name, sc.interval)
			if err != nil {
				fmt.Fprintln(stderr, "rana-bench:", err)
				return 1
			}
			snap.Axes = append(snap.Axes, ab)
			fmt.Fprintf(stdout, "%-24s axes @%5.0fµs: %.4g -> %.4g pJ (%.1f%% saved, %d reordered)\n",
				net.Name, ab.RefreshIntervalUS, ab.BaselinePJ, ab.AxesPJ, ab.SavedPct, ab.Reordered)
		}
	}

	if *latClients > 0 && *latRequests > 0 {
		lat, err := measureLatency(nets, *latClients, *latRequests)
		if err != nil {
			fmt.Fprintln(stderr, "rana-bench:", err)
			return 1
		}
		snap.Latency = lat
		fmt.Fprintf(stdout, "ranad latency (%d clients, %d requests): p50 %.2fms, p90 %.2fms, p99 %.2fms, max %.2fms, %d errors\n",
			lat.Clients, lat.Requests, lat.P50Ms, lat.P90Ms, lat.P99Ms, lat.MaxMs, lat.Errors)
	}

	doc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "rana-bench:", err)
		return 1
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintln(stderr, "rana-bench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	if *regress != "" {
		fails, err := checkRegression(stdout, *regress, &snap)
		if err != nil {
			fmt.Fprintln(stderr, "rana-bench:", err)
			return 1
		}
		if fails > 0 {
			fmt.Fprintf(stderr, "rana-bench: %d allocation regression(s) against %s\n", fails, *regress)
			return 1
		}
		fmt.Fprintf(stdout, "no allocation regressions against %s\n", *regress)
	}
	return 0
}

// checkRegression compares the fresh snapshot's throughput cells against
// a committed prior one. Allocation counts are deterministic, so growth
// beyond slack (25% + 32 allocs, absorbing measurement jitter from the
// MemStats-delta estimator) is a hard failure; wall-clock is noisy on
// shared CI machines, so ns/op regressions only warn. Cells present on
// one side only (new model, new backend) are skipped — trajectories are
// compared where both snapshots measured the same thing.
func checkRegression(stdout io.Writer, path string, snap *Snapshot) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("reading prior snapshot: %w", err)
	}
	var prior Snapshot
	if err := json.Unmarshal(raw, &prior); err != nil {
		return 0, fmt.Errorf("decoding prior snapshot %s: %w", path, err)
	}
	old := make(map[string]NetBench, len(prior.Networks))
	for _, nb := range prior.Networks {
		old[nb.Model+"\x00"+nb.Backend] = nb
	}
	fails := 0
	for _, nb := range snap.Networks {
		p, ok := old[nb.Model+"\x00"+nb.Backend]
		if !ok {
			continue
		}
		cell := nb.Model
		if nb.Backend != "" {
			cell += "/" + nb.Backend
		}
		for _, c := range []struct {
			kind     string
			old, new Run
		}{
			{"baseline", p.Baseline, nb.Baseline},
			{"optimized", p.Optimized, nb.Optimized},
			{"warm", p.Warm, nb.Warm},
		} {
			if limit := c.old.AllocsPerOp + c.old.AllocsPerOp/4 + 32; c.new.AllocsPerOp > limit {
				fmt.Fprintf(stdout, "FAIL %s/%s: allocs/op %d -> %d (limit %d)\n",
					cell, c.kind, c.old.AllocsPerOp, c.new.AllocsPerOp, limit)
				fails++
			}
			if c.old.NsPerOp > 0 && c.new.NsPerOp > 2*c.old.NsPerOp {
				fmt.Fprintf(stdout, "warn %s/%s: ns/op %d -> %d (>2x, not failing: wall-clock is noisy)\n",
					cell, c.kind, c.old.NsPerOp, c.new.NsPerOp)
			}
		}
	}
	return fails, nil
}

// benchOpts is the measured design point: the full RANA option set the
// golden schedules run under, through the given backend spec (empty =
// the default technology adapter).
func benchOpts(spec string) sched.Options {
	opts := sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: retention.TolerableRetentionTime,
		Controller:      memctrl.RefreshOptimized{},
	}
	if spec != "" {
		opts.Backend = spec
		if i := strings.IndexByte(spec, '@'); i >= 0 {
			opts.Backend, opts.OperatingPoint = spec[:i], spec[i+1:]
		}
	}
	return opts
}

// measureAxes prices one (network, refresh interval) cell of the
// traversal/mapping sweep: the default-axes pruned optimum against the
// same search with the RTC traversal ladder and every mapping policy
// enabled. Both runs use the default pruned strategy — the axis oracle
// (rana-verify -traversal) holds it byte-identical to exhaustive.
func measureAxes(net models.Network, cfg hw.Config, scenario string, interval time.Duration) (AxesBench, error) {
	opts := benchOpts("")
	opts.RefreshInterval = interval
	basePlan, err := sched.Schedule(net, cfg, opts)
	if err != nil {
		return AxesBench{}, fmt.Errorf("%s/%s: %w", net.Name, scenario, err)
	}
	opts.Traversal = "rtc"
	opts.Mapping = "all"
	axesPlan, err := sched.Schedule(net, cfg, opts)
	if err != nil {
		return AxesBench{}, fmt.Errorf("%s/%s: %w", net.Name, scenario, err)
	}
	ab := AxesBench{
		Model:             net.Name,
		Scenario:          scenario,
		RefreshIntervalUS: float64(interval) / float64(time.Microsecond),
		BaselinePJ:        basePlan.Energy.Total(),
		AxesPJ:            axesPlan.Energy.Total(),
	}
	ab.SavedPJ = ab.BaselinePJ - ab.AxesPJ
	if ab.BaselinePJ > 0 {
		ab.SavedPct = 100 * ab.SavedPJ / ab.BaselinePJ
	}
	for i, lp := range axesPlan.Layers {
		if lp.Traversal == "" && lp.Mapping == "" {
			continue
		}
		ab.Reordered++
		w := net.Layers[i].Name
		if lp.Traversal != "" {
			w += " " + lp.Traversal
		}
		if lp.Mapping != "" {
			w += " " + lp.Mapping
		}
		ab.Winners = append(ab.Winners, w)
	}
	return ab, nil
}

// selectBackends validates the -backends flag against the registry. The
// empty spec — the default adapter — is always first so every snapshot
// carries the legacy-comparable cell.
func selectBackends(flagVal string) ([]string, error) {
	out := []string{""}
	if flagVal == "" {
		return out, nil
	}
	seen := map[string]bool{"": true}
	for _, spec := range strings.Split(flagVal, ",") {
		spec = strings.TrimSpace(spec)
		if seen[spec] {
			continue
		}
		if _, _, err := mem.ParseSpec(spec); err != nil {
			return nil, err
		}
		seen[spec] = true
		out = append(out, spec)
	}
	return out, nil
}

// measureAll compiles net iters times under each of the given option
// sets, interleaving the variants round-robin so slow machine drift
// (frequency scaling, noisy neighbors) hits every variant equally and
// the baseline/optimized *ratio* stays trustworthy even when absolute
// wall-clock is noisy. Per variant the fastest sample is kept (minimum
// is the standard noise-resistant estimator for a deterministic
// workload) and allocations are averaged via per-iteration MemStats
// deltas taken outside the timed window. One untimed warmup run per
// variant absorbs first-touch effects (and primes any shared memo), and
// every iteration compiles into the same reused Plan
// (sched.ExploreNetworkInto) — the fleet steady state, where a
// warm-memo compile allocates nothing at all.
func measureAll(net models.Network, cfg hw.Config, variants []sched.Options, iters int) ([]Run, error) {
	ctx := context.Background()
	plans := make([]*sched.Plan, len(variants))
	best := make([]time.Duration, len(variants))
	stats := make([]sched.NetworkStats, len(variants))
	mallocs := make([]uint64, len(variants))
	bytes := make([]uint64, len(variants))
	for j, opts := range variants {
		plans[j] = &sched.Plan{}
		best[j] = -1
		if _, err := sched.ExploreNetworkInto(ctx, net, cfg, opts, plans[j]); err != nil {
			return nil, fmt.Errorf("%s: %w", net.Name, err)
		}
	}
	runtime.GC()
	// The forced GC demotes sync.Pool contents to victim caches; the
	// first compile after it pays a handful of refill allocations that
	// belong to the measurement harness, not the variant. One more
	// untimed pass re-primes the pools so the counted loop starts clean.
	for j, opts := range variants {
		if _, err := sched.ExploreNetworkInto(ctx, net, cfg, opts, plans[j]); err != nil {
			return nil, fmt.Errorf("%s: %w", net.Name, err)
		}
	}
	var ms0, ms1 runtime.MemStats
	for i := 0; i < iters; i++ {
		for j, opts := range variants {
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			st, err := sched.ExploreNetworkInto(ctx, net, cfg, opts, plans[j])
			elapsed := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", net.Name, err)
			}
			runtime.ReadMemStats(&ms1)
			if best[j] < 0 || elapsed < best[j] {
				best[j] = elapsed
			}
			mallocs[j] += ms1.Mallocs - ms0.Mallocs
			bytes[j] += ms1.TotalAlloc - ms0.TotalAlloc
			stats[j] = st
		}
	}
	runs := make([]Run, len(variants))
	for j := range variants {
		r := &runs[j]
		r.NsPerOp = best[j].Nanoseconds()
		r.AllocsPerOp = mallocs[j] / uint64(iters)
		r.BytesPerOp = bytes[j] / uint64(iters)
		r.Evaluated = stats[j].Search.Evaluated
		r.MemoHits = stats[j].MemoHits
		r.MemoMisses = stats[j].MemoMisses
		if n := stats[j].MemoHits + stats[j].MemoMisses; n > 0 {
			r.MemoHitRate = float64(stats[j].MemoHits) / float64(n)
		}
		r.PrefixHits = stats[j].PrefixHits
		r.PrefixMisses = stats[j].PrefixMisses
		if n := stats[j].PrefixHits + stats[j].PrefixMisses; n > 0 {
			r.PrefixHitRate = float64(stats[j].PrefixHits) / float64(n)
		}
		r.Workers = search.EffectiveParallelism(variants[j].Parallelism)
	}
	return runs, nil
}

// selectModels resolves the -models flag against the zoo.
func selectModels(spec string) ([]models.Network, error) {
	all := models.Benchmarks()
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]models.Network, len(all))
	var names []string
	for _, n := range all {
		byName[n.Name] = n
		names = append(names, n.Name)
	}
	var out []models.Network
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		n, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown model %q (want one of %v)", name, names)
		}
		out = append(out, n)
	}
	return out, nil
}
