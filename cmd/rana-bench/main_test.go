package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunWritesSnapshot drives the full flow on the cheapest model and
// checks the emitted document carries every field the trajectory
// comparison needs.
func TestRunWritesSnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_sched.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-models", "AlexNet", "-iters", "1", "-o", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("invalid snapshot JSON: %v", err)
	}
	if len(snap.Networks) != 1 || snap.Networks[0].Model != "AlexNet" {
		t.Fatalf("networks = %+v, want one AlexNet entry", snap.Networks)
	}
	nb := snap.Networks[0]
	if nb.Baseline.NsPerOp <= 0 || nb.Optimized.NsPerOp <= 0 {
		t.Fatalf("missing timings: %+v", nb)
	}
	if nb.Baseline.Evaluated <= 0 {
		t.Fatalf("baseline evaluated = %d, want > 0", nb.Baseline.Evaluated)
	}
	if nb.Baseline.MemoHits != 0 || nb.Baseline.MemoMisses != 0 {
		t.Fatalf("baseline must not touch the memo: %+v", nb.Baseline)
	}
	if nb.Optimized.MemoMisses <= 0 {
		t.Fatalf("optimized memo misses = %d, want > 0", nb.Optimized.MemoMisses)
	}
	if nb.Baseline.Workers != 1 || nb.Optimized.Workers < 1 {
		t.Fatalf("workers: baseline %d, optimized %d", nb.Baseline.Workers, nb.Optimized.Workers)
	}
	if nb.SpeedupX <= 0 {
		t.Fatalf("speedup = %v, want > 0", nb.SpeedupX)
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Fatalf("stdout missing confirmation: %q", stdout.String())
	}
}

// TestRunFlagErrors covers the exit-2 validation paths.
func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-iters", "0"},
		{"-models", "NopeNet"},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}
