package main

import (
	"strings"
	"testing"
)

// TestSweepAllZoo: the acceptance sweep — every benchmark network under
// OD and WD with zero divergences and zero invariant violations.
func TestSweepAllZoo(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "cases ok") {
		t.Errorf("missing success summary: %s", out.String())
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Errorf("unexpected failures: %s", out.String())
	}
}

// TestSweepSingleModelVerbose covers the per-network path with detail.
func TestSweepSingleModelVerbose(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-model", "AlexNet", "-v"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "AlexNet plan invariants") {
		t.Errorf("missing plan invariant line: %s", out.String())
	}
}

// TestSweepRandomAndFunctional covers the generator-driven paths.
func TestSweepRandomAndFunctional(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-model", "AlexNet", "-random", "40", "-functional", "2", "-seed", "3", "-v"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "randomized cases") || !strings.Contains(out.String(), "functional cases") {
		t.Errorf("missing sweep detail: %s", out.String())
	}
}

// TestAllPatterns includes the input-dominant pattern in the sweep.
func TestAllPatterns(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-model", "VGG", "-patterns", "ID,OD,WD"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
}

// Error paths: usage mistakes exit 2 with a diagnostic on stderr.
func TestErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad flag", []string{"-nope"}, "flag provided but not defined"},
		{"unknown model", []string{"-model", "LeNet"}, "unknown model"},
		{"unknown pattern", []string{"-patterns", "XX"}, "unknown pattern"},
		{"empty patterns", []string{"-patterns", ","}, "no patterns"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			if code := run(tc.args, &out, &errb); code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr %q missing %q", errb.String(), tc.want)
			}
		})
	}
}

// TestSweepStrategies covers the search-strategy differential path.
func TestSweepStrategies(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-model", "AlexNet", "-search", "8", "-seed", "3", "-v"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "strategies agree") {
		t.Errorf("missing strategy agreement lines: %s", out.String())
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Errorf("unexpected failures: %s", out.String())
	}
}
