package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rana/internal/serve"
	"rana/internal/serve/shard"
)

// TestSweepAllZoo: the acceptance sweep — every benchmark network under
// OD and WD with zero divergences and zero invariant violations.
func TestSweepAllZoo(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "cases ok") {
		t.Errorf("missing success summary: %s", out.String())
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Errorf("unexpected failures: %s", out.String())
	}
}

// TestSweepSingleModelVerbose covers the per-network path with detail.
func TestSweepSingleModelVerbose(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-model", "AlexNet", "-v"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "AlexNet plan invariants") {
		t.Errorf("missing plan invariant line: %s", out.String())
	}
}

// TestSweepRandomAndFunctional covers the generator-driven paths.
func TestSweepRandomAndFunctional(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-model", "AlexNet", "-random", "40", "-functional", "2", "-seed", "3", "-v"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "randomized cases") || !strings.Contains(out.String(), "functional cases") {
		t.Errorf("missing sweep detail: %s", out.String())
	}
}

// TestAllPatterns includes the input-dominant pattern in the sweep.
func TestAllPatterns(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-model", "VGG", "-patterns", "ID,OD,WD"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
}

// Error paths: usage mistakes exit 2 with a diagnostic on stderr.
func TestErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad flag", []string{"-nope"}, "flag provided but not defined"},
		{"unknown model", []string{"-model", "LeNet"}, "unknown model"},
		{"unknown pattern", []string{"-patterns", "XX"}, "unknown pattern"},
		{"empty patterns", []string{"-patterns", ","}, "no patterns"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			if code := run(tc.args, &out, &errb); code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr %q missing %q", errb.String(), tc.want)
			}
		})
	}
}

// TestSweepStrategies covers the search-strategy differential path.
func TestSweepStrategies(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-model", "AlexNet", "-search", "8", "-seed", "3", "-v"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "strategies agree") {
		t.Errorf("missing strategy agreement lines: %s", out.String())
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Errorf("unexpected failures: %s", out.String())
	}
}

// TestNodesSweep runs the cross-node conformance sweep against a live
// in-process fleet: a 2-shard ring plus a single-node reference, over
// one zoo network's schedule and compile requests.
func TestNodesSweep(t *testing.T) {
	startNode := func(cfg serve.Config) string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		s := serve.New(cfg)
		go s.Serve(ln)
		t.Cleanup(func() { s.Shutdown(context.Background()) })
		return "http://" + ln.Addr().String()
	}
	reference := startNode(serve.Config{})

	ids := []string{"a", "b"}
	lns := make([]net.Listener, len(ids))
	ringNodes := make([]shard.Node, len(ids))
	for i := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		ringNodes[i] = shard.Node{ID: ids[i], URL: "http://" + ln.Addr().String()}
	}
	urls := make([]string, len(ids))
	for i := range ids {
		ring, err := shard.New(ringNodes, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := serve.New(serve.Config{Ring: ring, ShardID: ids[i]})
		go s.Serve(lns[i])
		t.Cleanup(func() { s.Shutdown(context.Background()) })
		urls[i] = ringNodes[i].URL
	}

	var out, errb strings.Builder
	code := run([]string{"-model", "AlexNet", "-nodes", strings.Join(urls, ","), "-reference", reference, "-v"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "node cases ok") {
		t.Errorf("missing success summary: %s", out.String())
	}
	if !strings.Contains(out.String(), "/v1/compile") {
		t.Errorf("verbose output misses the compile sweep: %s", out.String())
	}
}

// TestNodesFlagValidation: -nodes and -reference travel together, and an
// all-empty node list is a usage error.
func TestNodesFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"nodes without reference", []string{"-nodes", "http://x"}, "must be given together"},
		{"reference without nodes", []string{"-reference", "http://x"}, "must be given together"},
		{"empty node list", []string{"-nodes", " , ", "-reference", "http://x"}, "lists no URLs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			if code := run(tc.args, &out, &errb); code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr %q missing %q", errb.String(), tc.want)
			}
		})
	}
}

// TestNodesSweepDivergence: a fleet node that answers with foreign bytes
// must fail the sweep with exit 1.
func TestNodesSweepDivergence(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{})
	go s.Serve(ln)
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	reference := "http://" + ln.Addr().String()

	rogue := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"plan": "rogue"}`)
	}))
	defer rogue.Close()

	var out, errb strings.Builder
	code := run([]string{"-model", "AlexNet", "-nodes", rogue.URL, "-reference", reference}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "nodes/body-bytes") {
		t.Errorf("missing body-bytes divergence: %s", out.String())
	}
}
