// Command rana-verify runs the cross-model conformance harness: for every
// benchmark network it checks that the analytical model, the cycle walker
// and (on demand) the word-accurate functional simulator agree, and that
// every compiled schedule satisfies the runtime invariants.
//
// Usage:
//
//	rana-verify                          # sweep the whole zoo under OD and WD
//	rana-verify -model AlexNet -v        # one network, per-layer detail
//	rana-verify -patterns ID,OD,WD       # include the input-dominant pattern
//	rana-verify -random 500 -seed 7      # randomized differential cases
//	rana-verify -functional 5            # word-accurate cross-checks
//	rana-verify -search 50               # search-strategy differential sweep
//	rana-verify -backends                # memory-backend differential sweep
//	rana-verify -traversal               # traversal/mapping-axis differential sweep
//	rana-verify -faults                  # fault-injection/error-budget differential sweep
//	rana-verify -parallel                # parallel/memoized ≡ sequential bytes
//	rana-verify -incremental             # incremental bound pricing ≡ stateless bytes + work
//	rana-verify -nodes URL,URL -reference URL  # fleet nodes ≡ single-node bytes
//
// The first divergence is reported with a minimized reproducer and the
// command exits 1; usage errors exit 2.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rana/internal/fixed"
	"rana/internal/hw"
	"rana/internal/mem"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sched"
	"rana/internal/training"
	"rana/internal/verify"
	"rana/internal/verify/gen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rana-verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "all", "benchmark network to sweep, or \"all\"")
	patterns := fs.String("patterns", "OD,WD", "comma-separated computation patterns to cross-check")
	random := fs.Int("random", 0, "number of additional randomized differential cases")
	seed := fs.Uint64("seed", 1, "seed for the randomized cases")
	functional := fs.Int("functional", 0, "number of word-accurate functional cross-checks")
	searchN := fs.Int("search", 0, "strategy differential: check pruned ≡ exhaustive on the selected networks plus this many random networks")
	backends := fs.Bool("backends", false, "backend differential: sweep the memory-backend registry (default ≡ legacy bytes, invariants and bounds at every admissible operating point, functional spot checks)")
	traversal := fs.Bool("traversal", false, "traversal/mapping differential: default axes ≡ legacy bytes, pruned ≡ exhaustive across the RTC and mapping axes, every admitted reorder meets its retention deadlines in the cycle walker")
	faults := fs.Bool("faults", false, "fault differential: empirically validate error-budget admission under backend-derived bit flips (per-layer budgets, seeded mask stability, pretrained oracle, negative over-budget check, faulty-storage spot checks)")
	parallel := fs.Bool("parallel", false, "parallelism differential: check parallel/memoized plans ≡ sequential exhaustive bytes on the selected networks")
	incremental := fs.Bool("incremental", false, "incremental-pricing differential: check plans and per-layer work accounting are identical with incremental bound pricing on and off")
	nodesList := fs.String("nodes", "", "cross-node conformance: comma-separated fleet node URLs; every node must answer the zoo byte-identically to -reference (runs only this sweep)")
	refURL := fs.String("reference", "", "single-node ranad URL the -nodes sweep compares against")
	verbose := fs.Bool("v", false, "report every case, not just failures")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	kinds, err := parsePatterns(*patterns)
	if err != nil {
		fmt.Fprintln(stderr, "rana-verify:", err)
		return 2
	}
	nets, err := selectNetworks(*model)
	if err != nil {
		fmt.Fprintln(stderr, "rana-verify:", err)
		return 2
	}

	// The nodes sweep talks to live ranad processes, not in-process
	// models; it runs alone so a fleet check never silently depends on
	// local model state.
	if *nodesList != "" || *refURL != "" {
		if *nodesList == "" || *refURL == "" {
			fmt.Fprintln(stderr, "rana-verify: -nodes and -reference must be given together")
			return 2
		}
		return sweepNodes(stdout, stderr, nets, *refURL, strings.Split(*nodesList, ","), *verbose)
	}

	tol := verify.DefaultTolerances()
	cfg := hw.TestAcceleratorEDRAM()
	opts := sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: 734 * time.Microsecond,
		Controller:      memctrl.RefreshOptimized{},
	}

	failures := 0
	cases := 0
	for _, net := range nets {
		for _, l := range net.Layers {
			for _, k := range kinds {
				cases++
				ti := sched.NaturalTiling(l, cfg)
				r := verify.CompareLayer(l, k, ti, cfg, tol)
				if !r.OK() {
					failures++
					fmt.Fprintf(stdout, "FAIL %s/%s\n%s\n", net.Name, l.Name, indent(r.String()))
					continue
				}
				a := pattern.MustAnalyze(l, k, ti, cfg)
				rr, err := verify.CompareRefresh(a, cfg, opts, tol)
				if err != nil {
					fmt.Fprintln(stderr, "rana-verify:", err)
					return 1
				}
				if !rr.OK() {
					failures++
					fmt.Fprintf(stdout, "FAIL %s/%s refresh\n%s\n", net.Name, l.Name, indent(rr.String()))
					continue
				}
				if *verbose {
					fmt.Fprintf(stdout, "ok   %s/%s %v\n", net.Name, l.Name, k)
				}
			}
		}

		// The compiled schedule must satisfy every structural invariant.
		cases++
		plan, err := sched.Schedule(net, cfg, opts)
		if err != nil {
			fmt.Fprintf(stdout, "FAIL %s: schedule: %v\n", net.Name, err)
			failures++
			continue
		}
		if vs := verify.CheckPlan(plan, tol); len(vs) != 0 {
			failures++
			fmt.Fprintf(stdout, "FAIL %s: %d invariant violations\n", net.Name, len(vs))
			for _, v := range vs {
				fmt.Fprintf(stdout, "  %s\n", v)
			}
		} else if *verbose {
			fmt.Fprintf(stdout, "ok   %s plan invariants (%d layers)\n", net.Name, len(plan.Layers))
		}
	}

	if *random > 0 {
		n, f := sweepRandom(stdout, *random, *seed, tol, *verbose)
		cases += n
		failures += f
	}
	if *functional > 0 {
		n, f := sweepFunctional(stdout, stderr, *functional, *seed, tol, *verbose)
		cases += n
		failures += f
	}
	if *searchN > 0 {
		n, f := sweepStrategies(stdout, stderr, nets, cfg, opts, *searchN, *seed, *verbose)
		cases += n
		failures += f
	}
	if *parallel {
		n, f := sweepParallelism(stdout, stderr, nets, cfg, opts, *verbose)
		cases += n
		failures += f
	}
	if *incremental {
		n, f := sweepIncremental(stdout, stderr, nets, cfg, opts, *verbose)
		cases += n
		failures += f
	}
	if *backends {
		n, f := sweepBackends(stdout, stderr, nets, cfg, opts, *seed, tol, *verbose)
		cases += n
		failures += f
	}
	if *traversal {
		n, f := sweepTraversal(stdout, stderr, nets, cfg, opts, tol, *verbose)
		cases += n
		failures += f
	}
	if *faults {
		n, f := sweepFaults(stdout, stderr, nets, cfg, opts, *seed, *verbose)
		cases += n
		failures += f
	}

	if failures > 0 {
		fmt.Fprintf(stdout, "rana-verify: %d of %d cases FAILED\n", failures, cases)
		return 1
	}
	fmt.Fprintf(stdout, "rana-verify: %d cases ok (models agree, invariants hold)\n", cases)
	return 0
}

// sweepRandom cross-checks count generator-driven cases and, on the first
// divergence, prints a minimized reproducer.
func sweepRandom(stdout io.Writer, count int, seed uint64, tol verify.Tolerances, verbose bool) (cases, failures int) {
	g := gen.New(seed)
	fails := func(c gen.Case) bool {
		if !verify.CompareLayer(c.Layer, c.Pattern, c.Tiling, c.Config, tol).OK() {
			return true
		}
		if c.Options.Controller == nil {
			return false
		}
		a := pattern.MustAnalyze(c.Layer, c.Pattern, c.Tiling, c.Config)
		rr, err := verify.CompareRefresh(a, c.Config, c.Options, tol)
		return err == nil && !rr.OK()
	}
	for i := 0; i < count; i++ {
		c := g.Case()
		cases++
		if !fails(c) {
			continue
		}
		failures++
		m := verify.Minimize(c, fails)
		r := verify.CompareLayer(m.Layer, m.Pattern, m.Tiling, m.Config, tol)
		fmt.Fprintf(stdout, "FAIL random case %d (seed %d); minimized repro:\n", i, seed)
		fmt.Fprintf(stdout, "  layer  %+v\n  tiling %+v\n  pattern %v on %s\n", m.Layer, m.Tiling, m.Pattern, m.Config.Name)
		fmt.Fprintf(stdout, "%s\n", indent(r.String()))
		return cases, failures
	}
	if verbose {
		fmt.Fprintf(stdout, "ok   %d randomized cases\n", count)
	}
	return cases, failures
}

// sweepFunctional cross-checks the word-accurate simulator on tiny layers
// at the conventional refresh interval.
func sweepFunctional(stdout, stderr io.Writer, count int, seed uint64, tol verify.Tolerances, verbose bool) (cases, failures int) {
	g := gen.New(seed)
	cfg := hw.TestAcceleratorEDRAM()
	for i := 0; i < count; i++ {
		l := g.TinyLayer()
		cases++
		r, err := verify.CompareFunctional(l, cfg, 45*time.Microsecond, seed+uint64(i), tol)
		if err != nil {
			fmt.Fprintln(stderr, "rana-verify: functional:", err)
			failures++
			return cases, failures
		}
		if !r.OK() {
			failures++
			fmt.Fprintf(stdout, "FAIL functional case %d (seed %d)\n%s\n", i, seed, indent(r.String()))
			return cases, failures
		}
	}
	if verbose {
		fmt.Fprintf(stdout, "ok   %d functional cases\n", count)
	}
	return cases, failures
}

// sweepStrategies runs the search-strategy differential oracle: pruned
// branch-and-bound must reproduce the exhaustive reference byte-for-byte
// on every selected network and on `count` small random networks, while
// evaluating no more candidates.
func sweepStrategies(stdout, stderr io.Writer, nets []models.Network, cfg hw.Config, opts sched.Options, count int, seed uint64, verbose bool) (cases, failures int) {
	check := func(name string, net models.Network, c hw.Config) {
		cases++
		r, err := verify.CompareStrategies(net, c, opts)
		if err != nil {
			fmt.Fprintln(stderr, "rana-verify:", err)
			failures++
			return
		}
		if !r.OK() {
			failures++
			fmt.Fprintf(stdout, "FAIL %s search strategies\n%s\n", name, indent(r.String()))
			return
		}
		if verbose {
			fmt.Fprintf(stdout, "ok   %s %s\n", name, r)
		}
	}
	for _, net := range nets {
		check(net.Name, net, cfg)
	}
	g := gen.New(seed)
	for i := 0; i < count; i++ {
		c := g.Config()
		net := models.Network{Name: fmt.Sprintf("random-%d", i)}
		for j := 0; j < 1+i%3; j++ {
			net.Layers = append(net.Layers, g.TinyLayer())
		}
		check(net.Name, net, c)
	}
	return cases, failures
}

// sweepParallelism runs the parallelism/memo differential oracle: every
// worker count in the default sweep (1, 2, GOMAXPROCS), memo on and off,
// must reproduce the sequential exhaustive plan byte-for-byte.
func sweepParallelism(stdout, stderr io.Writer, nets []models.Network, cfg hw.Config, opts sched.Options, verbose bool) (cases, failures int) {
	for _, net := range nets {
		cases++
		r, err := verify.CompareParallelism(net, cfg, opts)
		if err != nil {
			fmt.Fprintln(stderr, "rana-verify:", err)
			failures++
			continue
		}
		if !r.OK() {
			failures++
			fmt.Fprintf(stdout, "FAIL %s parallelism\n%s\n", net.Name, indent(r.String()))
			continue
		}
		if verbose {
			fmt.Fprintf(stdout, "ok   %s\n", r)
		}
	}
	return cases, failures
}

// sweepIncremental runs the incremental-pricing differential oracle:
// pruned and beam schedules with the incremental bound evaluator must
// reproduce the stateless-bound plans byte-for-byte (sequential and
// parallel), with identical per-layer work accounting.
func sweepIncremental(stdout, stderr io.Writer, nets []models.Network, cfg hw.Config, opts sched.Options, verbose bool) (cases, failures int) {
	for _, net := range nets {
		cases++
		r, err := verify.CompareIncremental(net, cfg, opts)
		if err != nil {
			fmt.Fprintln(stderr, "rana-verify:", err)
			failures++
			continue
		}
		if !r.OK() {
			failures++
			fmt.Fprintf(stdout, "FAIL %s incremental pricing\n%s\n", net.Name, indent(r.String()))
			continue
		}
		if verbose {
			fmt.Fprintf(stdout, "ok   %s\n", r)
		}
	}
	return cases, failures
}

// sweepBackends runs the memory-backend differential oracle on every
// selected network — explicit default backend ≡ legacy bytes, the whole
// registry's admissible operating points pass the invariant and bound
// checks — plus a word-accurate functional spot check of every buffer
// backend's failure injector on a tiny layer.
func sweepBackends(stdout, stderr io.Writer, nets []models.Network, cfg hw.Config, opts sched.Options, seed uint64, tol verify.Tolerances, verbose bool) (cases, failures int) {
	for _, net := range nets {
		cases++
		r, err := verify.CompareBackends(net, cfg, opts, tol)
		if err != nil {
			fmt.Fprintln(stderr, "rana-verify:", err)
			failures++
			continue
		}
		if !r.OK() {
			failures++
			fmt.Fprintf(stdout, "FAIL %s backends\n%s\n", net.Name, indent(r.String()))
			continue
		}
		if verbose {
			fmt.Fprintf(stdout, "ok   %s\n", r)
		}
	}
	g := gen.New(seed)
	l := g.TinyLayer()
	for _, bk := range mem.Buffers() {
		for _, p := range bk.Points() {
			spec := bk.Name() + "@" + p.Name
			cases++
			r, err := verify.CompareBackendFunctional(spec, l, cfg, seed, tol)
			if err != nil {
				fmt.Fprintln(stderr, "rana-verify: backend functional:", err)
				failures++
				continue
			}
			if !r.OK() {
				failures++
				fmt.Fprintf(stdout, "FAIL functional %s\n%s\n", spec, indent(r.String()))
				continue
			}
			if verbose {
				fmt.Fprintf(stdout, "ok   functional %s\n", spec)
			}
		}
	}
	return cases, failures
}

// sweepTraversal runs the traversal/mapping-axis differential oracle on
// every selected network: default-axis plans must be the legacy bytes,
// the pruned search must reproduce the exhaustive plan across the RTC
// and mapping axes, the beam must never beat it, and every admitted
// reorder must meet its retention deadlines in the cycle walker.
func sweepTraversal(stdout, stderr io.Writer, nets []models.Network, cfg hw.Config, opts sched.Options, tol verify.Tolerances, verbose bool) (cases, failures int) {
	for _, net := range nets {
		cases++
		r, err := verify.CompareTraversal(net, cfg, opts, tol)
		if err != nil {
			fmt.Fprintln(stderr, "rana-verify:", err)
			failures++
			continue
		}
		if !r.OK() {
			failures++
			fmt.Fprintf(stdout, "FAIL %s traversal\n%s\n", net.Name, indent(r.String()))
			continue
		}
		if verbose {
			fmt.Fprintf(stdout, "ok   %s\n", r)
		}
	}
	return cases, failures
}

// sweepFaults runs the fault-injection differential oracle on every
// selected network: the per-layer error budgets derived from the
// calibrated resilience curves must admit exactly the operating points
// whose bit-error rates clear them, seeded fault-mask derivation must
// be byte-stable across repeated draws, the pretrained empirical oracle
// must hold its accuracy constraint at every admitted rate, and the
// over-budget corner must be refused. A word-accurate spot check then
// drives every buffer backend's operating points through a faulty
// storage overlay on a tiny layer. One oracle (one pretraining run) is
// shared across the zoo.
func sweepFaults(stdout, stderr io.Writer, nets []models.Network, cfg hw.Config, opts sched.Options, seed uint64, verbose bool) (cases, failures int) {
	oracle := verify.NewFaultOracle(training.Config{
		Epochs: 3, LR: 0.02, Momentum: 0.9, Format: fixed.Q88, Seed: 1,
	}, 160)
	for _, net := range nets {
		cases++
		r, err := verify.CompareFaults(net, cfg, opts, oracle, 0, seed)
		if err != nil {
			fmt.Fprintln(stderr, "rana-verify: faults:", err)
			failures++
			continue
		}
		if !r.OK() {
			failures++
			fmt.Fprintf(stdout, "FAIL %s faults\n%s\n", net.Name, indent(r.String()))
			continue
		}
		if verbose {
			fmt.Fprintf(stdout, "ok   %s\n", r)
		}
	}
	// The spot-check rate is demonstrative, far above any admissible
	// bit-error rate: the point is to land flips and watch the simulator
	// count them, not to model an admitted corner.
	const spotRate = 0.05
	g := gen.New(seed)
	l := g.TinyLayer()
	for _, bk := range mem.Buffers() {
		for _, p := range bk.Points() {
			spec := bk.Name() + "@" + p.Name
			cases++
			r, err := verify.CompareFaultFunctional(spec, l, cfg, spotRate, seed)
			if err != nil {
				fmt.Fprintln(stderr, "rana-verify: fault functional:", err)
				failures++
				continue
			}
			if !r.OK() {
				failures++
				fmt.Fprintf(stdout, "FAIL fault functional %s\n%s\n", spec, indent(r.String()))
				continue
			}
			if verbose {
				fmt.Fprintf(stdout, "ok   fault functional %s\n", spec)
			}
		}
	}
	return cases, failures
}

// sweepNodes runs the cross-node conformance oracle against live ranad
// processes: every fleet node must answer each zoo schedule and compile
// request byte-identically to the reference node.
func sweepNodes(stdout, stderr io.Writer, nets []models.Network, reference string, nodes []string, verbose bool) int {
	urls := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n = strings.TrimSpace(n); n != "" {
			urls = append(urls, n)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(stderr, "rana-verify: -nodes lists no URLs")
		return 2
	}
	ctx := context.Background()
	cases, failures := 0, 0
	for _, net := range nets {
		body := []byte(fmt.Sprintf(`{"model": %q}`, net.Name))
		for _, path := range []string{"/v1/schedule", "/v1/compile"} {
			cases++
			r, err := verify.CompareNodes(ctx, nil, reference, urls, path, body)
			if err != nil {
				fmt.Fprintln(stderr, "rana-verify:", err)
				return 1
			}
			if !r.OK() {
				failures++
				fmt.Fprintf(stdout, "FAIL %s %s\n%s\n", net.Name, path, indent(r.String()))
				continue
			}
			if verbose {
				fmt.Fprintf(stdout, "ok   %s\n", r)
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "rana-verify: %d of %d node cases FAILED\n", failures, cases)
		return 1
	}
	fmt.Fprintf(stdout, "rana-verify: %d node cases ok (%d nodes byte-identical to %s)\n", cases, len(urls), reference)
	return 0
}

// parsePatterns maps a comma-separated list onto pattern kinds.
func parsePatterns(s string) ([]pattern.Kind, error) {
	var kinds []pattern.Kind
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToUpper(part)) {
		case "ID":
			kinds = append(kinds, pattern.ID)
		case "OD":
			kinds = append(kinds, pattern.OD)
		case "WD":
			kinds = append(kinds, pattern.WD)
		case "":
		default:
			return nil, fmt.Errorf("unknown pattern %q", part)
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no patterns in %q", s)
	}
	return kinds, nil
}

// selectNetworks resolves the -model flag against the benchmark zoo.
func selectNetworks(name string) ([]models.Network, error) {
	if name == "all" {
		return models.Benchmarks(), nil
	}
	n, ok := models.ByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown model %q", name)
	}
	return []models.Network{n}, nil
}

// indent prefixes every line for nested report output.
func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
