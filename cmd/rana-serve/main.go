// Command rana-serve (binary name: ranad) runs the RANA compilation
// service: an HTTP/JSON API over the three-stage framework with a plan
// cache, request dedup, a bounded worker pool and graceful shutdown.
//
// Usage:
//
//	ranad -addr :8080
//	ranad -addr 127.0.0.1:0 -workers 4 -cache 512 -timeout 30s
//
// The bound address is printed on startup (useful with port 0). On
// SIGINT/SIGTERM the listener closes immediately, in-flight requests get
// -drain to finish, and the process exits 0 after a clean drain.
//
// /v1/schedule requests open the Stage-2 search axes per request:
// "options": {"backend": ..., "traversal": "rtc", "mapping": "all"}
// (ParseTraversalSpec/ParseMappingSpec grammars; invalid specs are a
// 400). Default-axis requests keep their legacy cache keys — equivalent
// spellings collapse onto one canonical key — and /v1/catalog lists the
// traversal ladder and registered mapping policies. The degradation
// ladder's uniform fallback always pins the default order, so a
// deadline-squeezed request can never be handed an unverified reorder.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rana/internal/mem"
	"rana/internal/serve"
	"rana/internal/serve/chaos"
	"rana/internal/serve/shard"
	"rana/internal/serve/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable entry point. ready, if non-nil, receives the bound
// address once the listener is up.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("ranad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	workers := fs.Int("workers", 0, "max concurrent schedule computations (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 256, "plan cache capacity in entries (negative disables)")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request timeout, including queueing")
	drain := fs.Duration("drain", 15*time.Second, "shutdown grace for in-flight requests")
	queue := fs.Int("queue", 0, "admission queue depth beyond the worker pool (0 = 4x workers, negative = none)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive panics/timeouts that open a key's circuit breaker (0 = 3, negative disables)")
	breakerBackoff := fs.Duration("breaker-backoff", time.Second, "first breaker open window; doubles per re-open")
	degradeBudget := fs.Duration("degrade-budget", 200*time.Millisecond, "deadlines below this get the uniform fallback schedule (negative disables)")
	beamBudget := fs.Duration("beam-budget", time.Second, "deadlines below this (but above -degrade-budget) run the beam search unless the request pins a strategy (negative disables)")
	parallelism := fs.Int("parallelism", 0, "per-layer search workers for requests that do not pin one (0 = GOMAXPROCS)")
	memoEntries := fs.Int("memo-entries", 0, "server-wide layer-shape memo capacity (0 = default, negative disables)")
	chaosSpec := fs.String("chaos", "", `fault injection spec, e.g. "panic=7,latency=3:50ms,cancel=11,starve=13:200ms,seed=42" (testing only)`)
	selfcheck := fs.Bool("selfcheck", false, "run the end-to-end robustness selfcheck instead of serving; exit 0 on pass")
	quiet := fs.Bool("quiet", false, "suppress per-request logs")
	storePath := fs.String("store", "", "persistent plan store path; replayed into the cache on startup (empty disables)")
	storeSync := fs.Duration("store-sync", 0, "plan store fsync batching interval (0 = default 100ms, negative = fsync every put)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "plan store size bound; the log compacts down keeping newest entries (0 = unbounded)")
	peers := fs.String("peers", "", `fleet membership as "id=url,id=url"; requires -shard-id naming this node`)
	shardID := fs.String("shard-id", "", "this node's id within -peers")
	jobCap := fs.Int("jobs", 0, "async batch job table capacity (0 = 64, negative disables the batch API)")
	backendsFlag := fs.String("backends", "", "comma-separated memory-backend allowlist; requests naming any other backend get a 400 (empty = every registered backend; the default adapter is always admitted)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *selfcheck {
		return runSelfcheck(stdout, stderr)
	}

	var allowedBackends []string
	if *backendsFlag != "" {
		for _, name := range strings.Split(*backendsFlag, ",") {
			name = strings.TrimSpace(name)
			if _, ok := mem.Lookup(name); !ok {
				fmt.Fprintf(stderr, "ranad: -backends: unknown backend %q (have %s)\n",
					name, strings.Join(mem.Names(), ", "))
				return 2
			}
			allowedBackends = append(allowedBackends, name)
		}
	}

	var ring *shard.Ring
	switch {
	case *peers != "" && *shardID == "":
		fmt.Fprintln(stderr, "ranad: -peers requires -shard-id")
		return 2
	case *peers == "" && *shardID != "":
		fmt.Fprintln(stderr, "ranad: -shard-id requires -peers")
		return 2
	case *peers != "":
		nodes, err := shard.ParsePeers(*peers)
		if err != nil {
			fmt.Fprintln(stderr, "ranad:", err)
			return 2
		}
		r, err := shard.New(nodes, 0)
		if err != nil {
			fmt.Fprintln(stderr, "ranad:", err)
			return 2
		}
		if _, ok := r.Node(*shardID); !ok {
			fmt.Fprintf(stderr, "ranad: -shard-id %q is not in -peers\n", *shardID)
			return 2
		}
		ring = r
	}

	var planStore *store.Store
	if *storePath != "" {
		st, err := store.Open(*storePath, store.Options{
			SyncInterval: *storeSync,
			MaxBytes:     *storeMaxBytes,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(stderr, "ranad:", err)
			return 1
		}
		defer func() {
			if err := st.Close(); err != nil {
				fmt.Fprintln(stderr, "ranad: store close:", err)
			}
		}()
		stats := st.Stats()
		fmt.Fprintf(stderr, "ranad: plan store %s: %d entries replayed (%d bytes", *storePath, stats.Replayed, stats.FileBytes)
		if stats.DroppedTailBytes > 0 {
			fmt.Fprintf(stderr, ", %d torn tail bytes dropped", stats.DroppedTailBytes)
		}
		fmt.Fprintln(stderr, ")")
		planStore = st
	}

	var injector *chaos.Injector
	if *chaosSpec != "" {
		cfg, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintln(stderr, "ranad:", err)
			return 2
		}
		injector = chaos.New(cfg)
		fmt.Fprintf(stderr, "ranad: CHAOS MODE: injecting faults (%s)\n", *chaosSpec)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(stderr, format+"\n", args...)
	}
	srv := serve.New(serve.Config{
		Addr:             *addr,
		Workers:          *workers,
		CacheEntries:     *cache,
		RequestTimeout:   *timeout,
		QueueDepth:       *queue,
		RetryAfter:       *retryAfter,
		BreakerThreshold: *breakerThreshold,
		BreakerBackoff:   *breakerBackoff,
		DegradeBudget:    *degradeBudget,
		BeamBudget:       *beamBudget,
		Parallelism:      *parallelism,
		MemoEntries:      *memoEntries,
		Chaos:            injector,
		Store:            planStore,
		Ring:             ring,
		ShardID:          *shardID,
		JobCapacity:      *jobCap,
		AllowedBackends:  allowedBackends,
		Logf: func(format string, args ...any) {
			if !*quiet {
				logf(format, args...)
			}
		},
	})

	// Signals are registered before the address is announced so no
	// caller can observe a live listener with the default (fatal)
	// SIGTERM disposition still in place.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ranad:", err)
		return 1
	}
	fmt.Fprintf(stdout, "ranad: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	// Serve until a termination signal, then drain.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// Listener failed before any signal.
		fmt.Fprintln(stderr, "ranad:", err)
		return 1
	case sig := <-sigc:
		logf("ranad: %v: draining (up to %v)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "ranad: shutdown:", err)
		return 1
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(stderr, "ranad:", err)
		return 1
	}
	logf("ranad: drained, exiting")
	return 0
}
