package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// startRanad runs the binary's entry point on an ephemeral port and
// returns the base URL plus the exit-code channel.
func startRanad(t *testing.T, args ...string) (string, <-chan int, *bytes.Buffer) {
	t.Helper()
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	var mu sync.Mutex
	var logs bytes.Buffer
	w := lockedWriter{mu: &mu, w: &logs}
	go func() {
		exit <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), w, w, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, exit, &logs
	case code := <-exit:
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("ranad exited %d before listening: %s", code, logs.String())
		return "", nil, nil
	}
}

// lockedWriter keeps concurrent request logs and test reads race-free.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestServeSmokeAndGracefulSigterm(t *testing.T) {
	url, exit, _ := startRanad(t, "-quiet")

	// Liveness.
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	healthz, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(healthz), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, healthz)
	}

	// One real schedule request; keep several in flight while the
	// SIGTERM lands so the drain has work to do.
	const n = 4
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(url+"/v1/schedule", "application/json",
				strings.NewReader(`{"model": "GoogLeNet"}`))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			bodies[i], errs[i] = io.ReadAll(resp.Body)
			if resp.StatusCode != 200 {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, bodies[i])
			}
		}(i)
	}
	// Terminate only once every request has been admitted by the
	// middleware (the requests counter covers /v1 endpoints only), so
	// none of them can race the closing listener.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var m struct {
			Requests float64 `json:"requests"`
		}
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if m.Requests >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %v requests admitted", m.Requests)
		}
		time.Sleep(time.Millisecond)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Errorf("in-flight request %d failed during drain: %v", i, err)
		}
	}
	// Every drained response is valid JSON in the shared wire format.
	for i, body := range bodies {
		if len(body) == 0 {
			continue
		}
		var sr struct {
			Plan struct {
				Network string `json:"network"`
				Layers  []any  `json:"layers"`
			} `json:"plan"`
		}
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Errorf("response %d not valid JSON: %v", i, err)
			continue
		}
		if sr.Plan.Network != "GoogLeNet" || len(sr.Plan.Layers) != 57 {
			t.Errorf("response %d: plan %q with %d layers", i, sr.Plan.Network, len(sr.Plan.Layers))
		}
	}

	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("ranad did not exit after SIGTERM")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-bogus"}, &buf, &buf, nil); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}

func TestBadAddr(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-addr", "256.256.256.256:99999"}, &buf, &buf, nil); code != 1 {
		t.Errorf("bad addr exit = %d, want 1: %s", code, buf.String())
	}
}

// Shard flag misuse is a usage error, diagnosed before any listener.
func TestShardFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"peers without shard-id", []string{"-peers", "a=http://x"}, "-peers requires -shard-id"},
		{"shard-id without peers", []string{"-shard-id", "a"}, "-shard-id requires -peers"},
		{"malformed peers", []string{"-peers", "nope", "-shard-id", "a"}, `is not "id=url"`},
		{"shard-id not a member", []string{"-peers", "a=http://x", "-shard-id", "b"}, "not in -peers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if code := run(tc.args, &buf, &buf, nil); code != 2 {
				t.Fatalf("exit %d, want 2: %s", code, buf.String())
			}
			if !strings.Contains(buf.String(), tc.want) {
				t.Errorf("diagnostic %q missing %q", buf.String(), tc.want)
			}
		})
	}
}

// TestStoreFlagReplayAcrossRestart: a ranad started with -store logs the
// replay line, and a second ranad over the same file replays the entries
// the first one computed.
func TestStoreFlagReplayAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.log")

	url, exit, logs := startRanad(t, "-quiet", "-store", path)
	resp, err := http.Post(url+"/v1/schedule", "application/json",
		strings.NewReader(`{"model": "AlexNet"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("schedule: status %d", resp.StatusCode)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit %d after SIGTERM: %s", code, logs.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("ranad did not exit after SIGTERM")
	}
	if !strings.Contains(logs.String(), "0 entries replayed") {
		t.Errorf("first start should replay an empty store: %s", logs.String())
	}

	_, exit2, logs2 := startRanad(t, "-quiet", "-store", path)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit2:
		if code != 0 {
			t.Fatalf("restart exit %d: %s", code, logs2.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("restarted ranad did not exit after SIGTERM")
	}
	if !strings.Contains(logs2.String(), "1 entries replayed") {
		t.Errorf("restart should replay the computed plan: %s", logs2.String())
	}
}

// TestBadStorePath: an unopenable store path is a startup failure.
func TestBadStorePath(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-store", t.TempDir()}, &buf, &buf, nil); code != 1 {
		t.Errorf("directory as store path: exit %d, want 1: %s", code, buf.String())
	}
}
