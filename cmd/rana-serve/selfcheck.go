package main

// The -selfcheck mode: an end-to-end robustness probe a deployment (or
// CI) can run against this build without external tooling. It boots
// real servers on ephemeral ports with injected faults and verifies the
// survival contract from the client side, through the retrying client:
//
//  1. an injected computation panic yields a structured 500 and the
//     server keeps serving (healthz live, panic counted);
//  2. a saturated pool sheds with 429 + Retry-After while /healthz
//     answers, and a RetryClient rides through to success;
//  3. a tight deadline yields a valid schedule marked degraded;
//  4. shutdown drains an in-flight computation cleanly mid-chaos.
//
// Exit 0 means every check passed.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"rana/internal/serve"
	"rana/internal/serve/chaos"
)

// checkServer couples a serve.Server with its listener and base URL.
type checkServer struct {
	srv  *serve.Server
	url  string
	done chan error
}

func startCheckServer(cfg serve.Config) (*checkServer, error) {
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	cs := &checkServer{srv: srv, url: "http://" + ln.Addr().String(), done: make(chan error, 1)}
	go func() { cs.done <- srv.Serve(ln) }()
	return cs, nil
}

func (cs *checkServer) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cs.srv.Shutdown(ctx)
	<-cs.done
}

func runSelfcheck(stdout, stderr io.Writer) int {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	checks := []struct {
		name string
		fn   func(context.Context) error
	}{
		{"panic isolation", checkPanicIsolation},
		{"overload shedding", checkOverloadShedding},
		{"degradation ladder", checkDegradation},
		{"graceful drain", checkDrain},
	}
	failed := 0
	for _, c := range checks {
		if err := c.fn(ctx); err != nil {
			fmt.Fprintf(stderr, "selfcheck: %s: FAIL: %v\n", c.name, err)
			failed++
			continue
		}
		fmt.Fprintf(stdout, "selfcheck: %s: ok\n", c.name)
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "selfcheck: FAIL (%d/%d checks failed)\n", failed, len(checks))
		return 1
	}
	fmt.Fprintln(stdout, "selfcheck: PASS")
	return 0
}

const tinyNet = `{"network": {"name": "selfcheck", "layers": [
	{"name": "l0", "n": 2, "h": 8, "l": 8, "m": 4, "k": 3, "s": 1, "p": 1},
	{"name": "l1", "n": 4, "h": 8, "l": 8, "m": 4, "k": 1, "s": 1, "p": 0}
]}}`

// checkPanicIsolation: every computation panics by injection; the
// response must be a structured 500, the process must survive, and the
// panic must be counted.
func checkPanicIsolation(ctx context.Context) error {
	cs, err := startCheckServer(serve.Config{
		Chaos:            chaos.New(chaos.Config{PanicEvery: 1}),
		BreakerThreshold: -1, // keep every request on the computation path
	})
	if err != nil {
		return err
	}
	defer cs.stop()

	body, status, err := plainPost(ctx, cs.url+"/v1/schedule", tinyNet)
	if err != nil {
		return err
	}
	if status != 500 {
		return fmt.Errorf("injected panic: status %d, want 500: %s", status, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "panic") {
		return fmt.Errorf("500 body not a structured panic error: %s", body)
	}
	if err := expectHealthz(ctx, cs.url); err != nil {
		return fmt.Errorf("after panic: %w", err)
	}
	m, err := fetchMetrics(ctx, cs.url)
	if err != nil {
		return err
	}
	if m["panics_recovered"] < 1 {
		return fmt.Errorf("panics_recovered = %v, want >= 1", m["panics_recovered"])
	}
	return nil
}

// checkOverloadShedding: one worker, no waiting room, every computation
// stalled ~400ms by injection. A burst must produce at least one 429
// with Retry-After while /healthz stays live, and the RetryClient must
// land every request eventually.
func checkOverloadShedding(ctx context.Context) error {
	cs, err := startCheckServer(serve.Config{
		Workers:    1,
		QueueDepth: -1,
		RetryAfter: time.Second,
		Chaos:      chaos.New(chaos.Config{Seed: 2, StarveEvery: 1, Starve: 400 * time.Millisecond}),
	})
	if err != nil {
		return err
	}
	defer cs.stop()

	const n = 3
	type result struct {
		status int
		err    error
	}
	results := make(chan result, n)
	sawRetryAfter := make(chan string, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			// Distinct networks: each is its own computation, so the
			// burst genuinely contends for the single worker slot.
			body := fmt.Sprintf(`{"network": {"name": "burst%d", "layers": [
				{"name": "l0", "n": 2, "h": 8, "l": 8, "m": %d, "k": 3, "s": 1, "p": 1}
			]}}`, i, 2+i)
			rc := &serve.RetryClient{
				MaxAttempts: 10,
				BaseBackoff: 100 * time.Millisecond,
				Budget:      30 * time.Second,
				Seed:        int64(i + 1),
				Logf: func(format string, args ...any) {
					msg := fmt.Sprintf(format, args...)
					if strings.Contains(msg, "status 429") {
						select {
						case sawRetryAfter <- msg:
						default:
						}
					}
				},
			}
			_, status, err := rc.PostJSON(ctx, cs.url+"/v1/schedule", []byte(body))
			results <- result{status, err}
		}(i)
	}
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil {
			return fmt.Errorf("burst request: %w", r.err)
		}
		if r.status != 200 {
			return fmt.Errorf("burst request final status %d, want 200 after retries", r.status)
		}
	}
	if err := expectHealthz(ctx, cs.url); err != nil {
		return fmt.Errorf("under saturation: %w", err)
	}
	m, err := fetchMetrics(ctx, cs.url)
	if err != nil {
		return err
	}
	if m["shed"] < 1 {
		return fmt.Errorf("shed = %v, want >= 1 (burst never saturated the pool)", m["shed"])
	}
	return nil
}

// checkDegradation: a deadline below the degrade budget must return a
// valid schedule marked degraded.
func checkDegradation(ctx context.Context) error {
	cs, err := startCheckServer(serve.Config{DegradeBudget: 200 * time.Millisecond})
	if err != nil {
		return err
	}
	defer cs.stop()

	req := strings.TrimSuffix(tinyNet, "}") + `, "deadline_ms": 50}`
	body, status, err := plainPost(ctx, cs.url+"/v1/schedule", req)
	if err != nil {
		return err
	}
	if status != 200 {
		return fmt.Errorf("deadline request status %d: %s", status, body)
	}
	var sr struct {
		Degraded bool `json:"degraded"`
		Plan     struct {
			Layers []any `json:"layers"`
		} `json:"plan"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		return err
	}
	if !sr.Degraded {
		return fmt.Errorf("50ms deadline not degraded: %s", body)
	}
	if len(sr.Plan.Layers) != 2 {
		return fmt.Errorf("degraded plan has %d layers, want 2", len(sr.Plan.Layers))
	}
	return nil
}

// checkDrain: shutdown must wait for an in-flight stalled computation
// and the request must still succeed.
func checkDrain(ctx context.Context) error {
	cs, err := startCheckServer(serve.Config{
		Chaos: chaos.New(chaos.Config{Seed: 3, LatencyEvery: 1, Latency: 300 * time.Millisecond}),
	})
	if err != nil {
		return err
	}

	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		_, status, err := plainPost(ctx, cs.url+"/v1/schedule", tinyNet)
		inflight <- result{status, err}
	}()
	time.Sleep(100 * time.Millisecond) // request is now inside its injected stall

	sdCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := cs.srv.Shutdown(sdCtx); err != nil {
		return fmt.Errorf("shutdown mid-chaos: %w", err)
	}
	if err := <-cs.done; err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("serve loop: %w", err)
	}
	r := <-inflight
	if r.err != nil {
		return fmt.Errorf("in-flight request during drain: %w", r.err)
	}
	if r.status != 200 {
		return fmt.Errorf("in-flight request drained with status %d, want 200", r.status)
	}
	return nil
}

func plainPost(ctx context.Context, url, body string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return b, resp.StatusCode, err
}

func expectHealthz(ctx context.Context, baseURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("healthz unreachable: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != 200 {
		return fmt.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
	return nil
}

func fetchMetrics(ctx context.Context, baseURL string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out, nil
}
