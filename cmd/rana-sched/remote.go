package main

// The -server mode: compile on a ranad instance instead of in process.
// Requests go through serve.RetryClient, so shed (429) and breaker/drain
// (503) responses are retried with Retry-After-aware jittered backoff
// within a fixed time budget.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rana/internal/serve"
)

// runRemote posts the compilation to baseURL and prints the result in
// the mode's format: -export prints the portable artifact verbatim,
// -json prints the plan wire encoding, and the default prints the
// compile summary numbers (the per-layer table needs the in-process
// output and is only available locally).
func runRemote(baseURL, model, strategy, backend, point, traversal, mapping string, parallelism int, export, asJSON bool, stdout, stderr io.Writer) int {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rc := &serve.RetryClient{
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "rana-sched: "+format+"\n", args...)
		},
	}
	req := map[string]any{"model": model}
	if asJSON {
		// /v1/schedule carries the same plan wire encoding as local -json.
		// A -search strategy pins the server's exploration (and opts the
		// request out of the beam rung of the degradation ladder);
		// -parallelism rides along as a throughput hint that never changes
		// the plan bytes.
		options := map[string]any{}
		if strategy != "" {
			options["search"] = strategy
		}
		if parallelism > 0 {
			options["parallelism"] = parallelism
		}
		if backend != "" {
			options["backend"] = backend
		}
		if point != "" {
			options["operating_point"] = point
		}
		if traversal != "" {
			options["traversal"] = traversal
		}
		if mapping != "" {
			options["mapping"] = mapping
		}
		if len(options) > 0 {
			req["options"] = options
		}
		reqBody, err := json.Marshal(req)
		if err != nil {
			fmt.Fprintln(stderr, "rana-sched:", err)
			return 1
		}
		body, status, err := rc.PostJSON(ctx, baseURL+"/v1/schedule", reqBody)
		if err != nil {
			fmt.Fprintln(stderr, "rana-sched:", err)
			return 1
		}
		if status != 200 {
			return remoteError(stderr, status, body)
		}
		var resp struct {
			Plan json.RawMessage `json:"plan"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			fmt.Fprintln(stderr, "rana-sched:", err)
			return 1
		}
		return printIndented(stdout, stderr, resp.Plan)
	}

	if strategy != "" {
		req["search"] = strategy
	}
	if parallelism > 0 {
		req["parallelism"] = parallelism
	}
	reqBody, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintln(stderr, "rana-sched:", err)
		return 1
	}
	body, status, err := rc.PostJSON(ctx, baseURL+"/v1/compile", reqBody)
	if err != nil {
		fmt.Fprintln(stderr, "rana-sched:", err)
		return 1
	}
	if status != 200 {
		return remoteError(stderr, status, body)
	}
	var resp struct {
		TolerableRate        float64         `json:"tolerable_rate"`
		TolerableRetentionNS int64           `json:"tolerable_retention_ns"`
		DividerRatio         uint64          `json:"divider_ratio"`
		EnergyPJ             float64         `json:"energy_pj"`
		Artifact             json.RawMessage `json:"artifact"`
		Plan                 struct {
			Layers []any `json:"layers"`
		} `json:"plan"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		fmt.Fprintln(stderr, "rana-sched:", err)
		return 1
	}
	if export {
		return printIndented(stdout, stderr, resp.Artifact)
	}
	fmt.Fprintf(stdout, "%s via %s: %d layers scheduled\n", model, baseURL, len(resp.Plan.Layers))
	fmt.Fprintf(stdout, "tolerable refresh rate: %.4f, retention: %v, divider ratio: %d\n",
		resp.TolerableRate, time.Duration(resp.TolerableRetentionNS), resp.DividerRatio)
	fmt.Fprintf(stdout, "energy: total %.3f mJ\n", resp.EnergyPJ/1e9)
	return 0
}

// remoteError reports a non-200 final status, surfacing the server's
// structured error message when the body carries one.
func remoteError(stderr io.Writer, status int, body []byte) int {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		fmt.Fprintf(stderr, "rana-sched: server returned %d: %s\n", status, e.Error)
	} else {
		fmt.Fprintf(stderr, "rana-sched: server returned %d\n", status)
	}
	return 1
}

func printIndented(stdout, stderr io.Writer, raw json.RawMessage) int {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		fmt.Fprintln(stderr, "rana-sched:", err)
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(stderr, "rana-sched:", err)
		return 1
	}
	return 0
}
