package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"rana/internal/serve"
)

func startRemote(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestRemoteSummary(t *testing.T) {
	url := startRemote(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-model", "AlexNet", "-server", url}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"AlexNet via " + url, "5 layers scheduled", "tolerable refresh rate:", "energy: total"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRemoteJSONMatchesLocal(t *testing.T) {
	url := startRemote(t)
	var remote, local, errBuf bytes.Buffer
	if code := run([]string{"-model", "AlexNet", "-json", "-server", url}, &remote, &errBuf); code != 0 {
		t.Fatalf("remote exit %d: %s", code, errBuf.String())
	}
	if code := run([]string{"-model", "AlexNet", "-json"}, &local, &errBuf); code != 0 {
		t.Fatalf("local exit %d: %s", code, errBuf.String())
	}
	var rv, lv any
	if err := json.Unmarshal(remote.Bytes(), &rv); err != nil {
		t.Fatalf("remote -json not valid JSON: %v", err)
	}
	if err := json.Unmarshal(local.Bytes(), &lv); err != nil {
		t.Fatalf("local -json not valid JSON: %v", err)
	}
	// The plan wire encoding must be the same whether the compilation ran
	// in process or on the server.
	rb, _ := json.Marshal(rv)
	lb, _ := json.Marshal(lv)
	if !bytes.Equal(rb, lb) {
		t.Errorf("remote plan differs from local plan:\nremote: %s\nlocal:  %s", rb, lb)
	}
}

func TestRemoteExportMatchesLocal(t *testing.T) {
	url := startRemote(t)
	var remote, local, errBuf bytes.Buffer
	if code := run([]string{"-model", "AlexNet", "-export", "-server", url}, &remote, &errBuf); code != 0 {
		t.Fatalf("remote exit %d: %s", code, errBuf.String())
	}
	if code := run([]string{"-model", "AlexNet", "-export"}, &local, &errBuf); code != 0 {
		t.Fatalf("local exit %d: %s", code, errBuf.String())
	}
	var rv, lv any
	if err := json.Unmarshal(remote.Bytes(), &rv); err != nil {
		t.Fatalf("remote -export not valid JSON: %v", err)
	}
	if err := json.Unmarshal(local.Bytes(), &lv); err != nil {
		t.Fatalf("local -export not valid JSON: %v", err)
	}
	rb, _ := json.Marshal(rv)
	lb, _ := json.Marshal(lv)
	if !bytes.Equal(rb, lb) {
		t.Errorf("remote artifact differs from local artifact")
	}
}

func TestRemoteUnknownModel(t *testing.T) {
	url := startRemote(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-model", "nope", "-server", url}, &out, &errBuf); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "server returned 4") {
		t.Errorf("stderr missing server error: %q", errBuf.String())
	}
}

func TestRemoteUnreachable(t *testing.T) {
	var out, errBuf bytes.Buffer
	// A closed port: the retrying client must give up within its attempt
	// budget and the command must fail cleanly.
	code := run([]string{"-model", "AlexNet", "-server", "http://127.0.0.1:1"}, &out, &errBuf)
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if errBuf.Len() == 0 {
		t.Error("no diagnostic on stderr")
	}
}
