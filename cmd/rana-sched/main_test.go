package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestScheduleAlexNet(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-model", "AlexNet"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"stage1", "734µs", "conv1", "energy:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestExportIsValidJSON(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-model", "AlexNet", "-export"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var decoded map[string]any
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	if decoded["network"] != "AlexNet" {
		t.Errorf("network = %v", decoded["network"])
	}
}

func TestUnknownModel(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-model", "nope"}, &out, &errBuf); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), `unknown model "nope"`) {
		t.Errorf("stderr missing diagnostic: %q", errBuf.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "flag provided but not defined") {
		t.Errorf("stderr missing flag diagnostic: %q", errBuf.String())
	}
}

func TestJSONIsWireFormat(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-model", "AlexNet", "-json"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var plan struct {
		Network string `json:"network"`
		Layers  []struct {
			Name    string `json:"name"`
			Pattern string `json:"pattern"`
		} `json:"layers"`
		EnergyPJ float64 `json:"energy_pj"`
	}
	if err := json.Unmarshal(out.Bytes(), &plan); err != nil {
		t.Fatalf("-json output not valid JSON: %v", err)
	}
	if plan.Network != "AlexNet" || len(plan.Layers) != 5 {
		t.Errorf("plan = %q with %d layers", plan.Network, len(plan.Layers))
	}
	if plan.EnergyPJ <= 0 {
		t.Error("non-positive energy")
	}
	for _, l := range plan.Layers {
		if l.Pattern != "OD" && l.Pattern != "WD" {
			t.Errorf("layer %s has pattern %q outside the RANA space", l.Name, l.Pattern)
		}
	}
}

func TestExportAndJSONExclusive(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-export", "-json"}, &out, &errBuf); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "mutually exclusive") {
		t.Errorf("stderr missing diagnostic: %q", errBuf.String())
	}
}
