// Command rana-sched compiles a benchmark network with the full RANA
// framework and prints the layerwise configurations: the hybrid
// computation pattern assignment of Stage 2 and the per-layer refresh
// flags of Stage 3.
//
// Usage:
//
//	rana-sched -model ResNet
//	rana-sched -model AlexNet -export   # serialized compilation artifact
//	rana-sched -model AlexNet -json     # plan in the shared wire format
//	rana-sched -model VGG -server http://ranad:8080   # compile remotely
//	rana-sched -model AlexNet -backend approx-dram          # open point axis
//	rana-sched -model AlexNet -backend approx-dram@v0.8     # pinned point
//
// With -server the compilation runs on a ranad instance instead of in
// process, through the retrying client: 429 (shed) and 503
// (breaker/drain) responses are retried with Retry-After-aware backoff,
// so a briefly saturated ranad looks like a slow one, not a failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rana"
	"rana/internal/mem"
	"rana/internal/sched"
	"rana/internal/sched/search"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rana-sched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "ResNet", "benchmark network: AlexNet, VGG, GoogLeNet or ResNet")
	export := fs.Bool("export", false, "emit the compiled layerwise configuration artifact as JSON")
	asJSON := fs.Bool("json", false, "emit the compiled plan in the shared wire format (the golden/serving encoding)")
	server := fs.String("server", "", "compile on a ranad instance (base URL) instead of in process")
	strategy := fs.String("search", "", `Stage 2 exploration strategy: "exhaustive", "pruned" or "beam" (default pruned)`)
	parallelism := fs.Int("parallelism", 0, "per-layer search workers (0 = GOMAXPROCS; plans are identical at every level)")
	backendSpec := fs.String("backend", "", `memory backend "name" or "name@point" (default: the platform's technology adapter; a bare name searches every point within the error budget)`)
	traversal := fs.String("traversal", "", `tile-traversal axis spec: "linear", "rtc" or "blocked<n>", comma-separated (default: linear nest only)`)
	mapping := fs.String("mapping", "", `data-mapping axis spec: "row-major", "interleave" or "all" (default: row-major only)`)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *export && *asJSON {
		fmt.Fprintln(stderr, "rana-sched: -export and -json are mutually exclusive")
		return 2
	}
	if err := (search.Strategy(*strategy)).Validate(); err != nil {
		fmt.Fprintln(stderr, "rana-sched:", err)
		return 2
	}
	if *parallelism < 0 || *parallelism > search.MaxParallelism {
		fmt.Fprintf(stderr, "rana-sched: -parallelism %d outside [0, %d]\n", *parallelism, search.MaxParallelism)
		return 2
	}
	backend, point, err := splitBackendSpec(*backendSpec)
	if err != nil {
		fmt.Fprintln(stderr, "rana-sched:", err)
		return 2
	}
	if _, err := sched.ParseTraversalSpec(*traversal); err != nil {
		fmt.Fprintln(stderr, "rana-sched:", err)
		return 2
	}
	if _, err := sched.ParseMappingSpec(*mapping); err != nil {
		fmt.Fprintln(stderr, "rana-sched:", err)
		return 2
	}
	if *server != "" {
		if (backend != "" || *traversal != "" || *mapping != "") && !*asJSON {
			fmt.Fprintln(stderr, "rana-sched: -backend/-traversal/-mapping with -server require -json (the compile endpoint has no search axes)")
			return 2
		}
		return runRemote(*server, *model, *strategy, backend, point, *traversal, *mapping, *parallelism, *export, *asJSON, stdout, stderr)
	}

	var net rana.Network
	found := false
	for _, n := range rana.Benchmarks() {
		if n.Name == *model {
			net, found = n, true
		}
	}
	if !found {
		fmt.Fprintf(stderr, "rana-sched: unknown model %q\n", *model)
		return 2
	}

	fw := rana.NewFramework()
	fw.Search = search.Strategy(*strategy)
	fw.Parallelism = *parallelism
	fw.Backend = backend
	fw.OperatingPoint = point
	fw.Traversal = *traversal
	fw.Mapping = *mapping
	out, err := fw.Compile(net)
	if err != nil {
		fmt.Fprintln(stderr, "rana-sched:", err)
		return 1
	}
	if *export {
		if err := out.ExportConfig(stdout); err != nil {
			fmt.Fprintln(stderr, "rana-sched:", err)
			return 1
		}
		return 0
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rana.EncodePlan(out.Plan)); err != nil {
			fmt.Fprintln(stderr, "rana-sched:", err)
			return 1
		}
		return 0
	}
	fmt.Fprintln(stdout, out.Summary())
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "%-20s %-4s %-24s %10s %12s %8s\n",
		"Layer", "Pat", "Tiling", "Exec", "MaxLifetime", "Refresh")
	for i, lc := range out.Layerwise {
		lp := out.Plan.Layers[i]
		flagged := 0
		for _, f := range lc.RefreshFlags {
			if f {
				flagged++
			}
		}
		refresh := "off"
		if flagged > 0 {
			refresh = fmt.Sprintf("%d banks", flagged)
		}
		// Non-default traversal/mapping cells are annotated at line end;
		// default-axis runs keep the historical table bytes.
		axes := ""
		if lp.Traversal != "" {
			axes += "  " + lp.Traversal
		}
		if lp.Mapping != "" {
			axes += "  " + lp.Mapping
		}
		fmt.Fprintf(stdout, "%-20s %-4s %-24s %10s %12s %8s%s\n",
			lc.Layer.Name, lc.Pattern, lc.Tiling.String(),
			lp.Analysis.ExecTime.Round(100), lp.Analysis.Lifetimes.Max().Round(100), refresh, axes)
	}
	fmt.Fprintln(stdout)
	e := out.Energy
	fmt.Fprintf(stdout, "energy: computing %.3f mJ, buffer %.3f mJ, refresh %.3f mJ, off-chip %.3f mJ, total %.3f mJ\n",
		e.Computing/1e9, e.BufferAccess/1e9, e.Refresh/1e9, e.OffChip/1e9, e.Total()/1e9)
	if e.Wear > 0 {
		fmt.Fprintf(stdout, "wear: %.3f mJ\n", e.Wear/1e9)
	}
	return 0
}

// splitBackendSpec validates a -backend flag against the registry and
// splits it into the (backend, point) pair the framework takes. A bare
// backend name leaves the point empty — the open search axis — which is
// why this does not reuse ParseSpec's nominal-defaulting directly.
func splitBackendSpec(spec string) (backend, point string, err error) {
	if spec == "" {
		return "", "", nil
	}
	if _, _, err := mem.ParseSpec(spec); err != nil {
		return "", "", err
	}
	backend = spec
	if i := strings.IndexByte(spec, '@'); i >= 0 {
		backend, point = spec[:i], spec[i+1:]
	}
	return backend, point, nil
}
